"""Execution tracing: per-instruction timeline with speculation episodes.

Attach a :class:`Tracer` to a machine, run code, and render a text
timeline interleaving architectural instructions with the phantom /
Spectre episodes they triggered — the tool we reach for when a new
experiment misbehaves.

Internally the tracer records typed :class:`~repro.telemetry.trace.TraceEvent`
objects (schema ``phantom.trace/1``); the text renderer is one sink over
that stream, and :meth:`Tracer.write_jsonl` is another.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..pipeline import EpisodeRecord, Reach
from ..telemetry.trace import JsonLinesSink, TraceEvent


@dataclass
class TraceEntry:
    """One retired instruction plus the episodes it triggered."""

    pc: int
    text: str
    cycle: int
    kernel_mode: bool
    episodes: list[EpisodeRecord] = field(default_factory=list)


def _episode_fields(ep: EpisodeRecord) -> dict:
    return {
        "source_pc": ep.source_pc,
        "predicted_kind": ep.predicted_kind.value if ep.predicted_kind else None,
        "actual_kind": ep.actual_kind.value,
        "target": ep.target,
        "reach": ep.reach.name,
        "flavour": "phantom" if ep.frontend_resteer else "spectre",
        "cross_privilege": ep.cross_privilege,
        "nested": ep.nested,
    }


class Tracer:
    """Records an instruction/episode timeline from a machine.

    Episodes recorded after the ``limit``-th instruction are not dropped:
    the first overflow attaches its pending episodes to the final entry
    and emits a ``trace_truncated`` event; later episodes land in
    :attr:`orphan_episodes`, as do episodes recorded before the first
    instruction retires.
    """

    def __init__(self, machine, *, limit: int = 10_000) -> None:
        self.machine = machine
        self.limit = limit
        self.entries: list[TraceEntry] = []
        self.events: list[TraceEvent] = []
        self.orphan_episodes: list[EpisodeRecord] = []
        self.truncated = False
        self.dropped_instructions = 0
        self._armed = False

    # -- recording -----------------------------------------------------------

    def __enter__(self) -> "Tracer":
        cpu = self.machine.cpu
        self._saved_hook = cpu.instr_hook
        self._saved_record = cpu.record_episodes
        self._episode_mark = len(cpu.episodes)
        cpu.record_episodes = True
        cpu.instr_hook = self._on_instruction
        self._armed = True
        return self

    def __exit__(self, *exc) -> None:
        cpu = self.machine.cpu
        cpu.instr_hook = self._saved_hook
        cpu.record_episodes = self._saved_record
        self._armed = False
        self._attach_remaining_episodes()
        if self.orphan_episodes:
            self.events.append(TraceEvent(
                "orphan_episodes", cpu.cycles,
                {"count": len(self.orphan_episodes)}))

    def _on_instruction(self, pc: int, instr) -> None:
        cpu = self.machine.cpu
        if len(self.entries) >= self.limit:
            if not self.truncated:
                # Pending episodes belong to the last traced instruction;
                # attach them before marking the cut.
                self._attach_remaining_episodes()
                self.truncated = True
                self.events.append(TraceEvent(
                    "trace_truncated", cpu.cycles, {"limit": self.limit}))
            self.dropped_instructions += 1
            self._attach_remaining_episodes()
            return
        self._attach_remaining_episodes()
        self.entries.append(TraceEntry(
            pc=pc, text=str(instr), cycle=cpu.cycles,
            kernel_mode=cpu.kernel_mode))
        self.events.append(TraceEvent(
            "retire", cpu.cycles,
            {"pc": pc, "text": str(instr), "kernel_mode": cpu.kernel_mode}))

    def _attach_remaining_episodes(self) -> None:
        cpu = self.machine.cpu
        new = cpu.episodes[self._episode_mark:]
        self._episode_mark = len(cpu.episodes)
        if not new:
            return
        for ep in new:
            self.events.append(TraceEvent(
                "episode", ep.cycle, _episode_fields(ep)))
        if self.entries and not self.truncated:
            self.entries[-1].episodes.extend(new)
        else:
            # Before the first instruction, or past the truncation point:
            # keep them visible instead of attaching to nothing.
            self.orphan_episodes.extend(new)

    # -- structured export -----------------------------------------------------

    def write_jsonl(self, path) -> int:
        """Dump the typed event stream as JSON-lines; returns event count."""
        sink = JsonLinesSink(path)
        try:
            for event in self.events:
                sink.emit(event)
        finally:
            sink.close()
        return len(self.events)

    # -- rendering -------------------------------------------------------------

    @staticmethod
    def _reach_tag(reach: Reach) -> str:
        return {Reach.NONE: "--", Reach.FETCH: "IF", Reach.DECODE: "ID",
                Reach.EXECUTE: "EX"}[reach]

    @classmethod
    def _episode_line(cls, ep: EpisodeRecord) -> str:
        flavour = "phantom" if ep.frontend_resteer else "spectre"
        nested = " nested" if ep.nested else ""
        predicted = (ep.predicted_kind.value
                     if ep.predicted_kind else "none")
        return (f"{'':>10s} |  {flavour}{nested}: predicted "
                f"{predicted} at {ep.source_pc:#x} -> "
                f"{ep.target:#x} reach={cls._reach_tag(ep.reach)}")

    def render(self, *, show_episodes: bool = True) -> str:
        """Text timeline: ``cycle  mode  pc  instruction`` plus episode
        annotations indented beneath their triggering instruction."""
        lines = []
        for entry in self.entries:
            mode = "K" if entry.kernel_mode else "u"
            lines.append(f"{entry.cycle:>10d} {mode} {entry.pc:#014x}  "
                         f"{entry.text}")
            if not show_episodes:
                continue
            for ep in entry.episodes:
                lines.append(self._episode_line(ep))
        if self.truncated:
            lines.append(f"{'':>10s} ~  trace truncated at limit="
                         f"{self.limit} ({self.dropped_instructions} "
                         f"instructions dropped)")
        if self.orphan_episodes and show_episodes:
            lines.append(f"{'':>10s} ~  {len(self.orphan_episodes)} "
                         f"orphan episode(s) not attached to any "
                         f"traced instruction:")
            for ep in self.orphan_episodes:
                lines.append(self._episode_line(ep))
        return "\n".join(lines)

    def episode_count(self, *, frontend: bool | None = None) -> int:
        total = 0
        for entry in self.entries:
            for ep in entry.episodes:
                if frontend is None or ep.frontend_resteer == frontend:
                    total += 1
        for ep in self.orphan_episodes:
            if frontend is None or ep.frontend_resteer == frontend:
                total += 1
        return total
