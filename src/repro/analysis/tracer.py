"""Execution tracing: per-instruction timeline with speculation episodes.

Attach a :class:`Tracer` to a machine, run code, and render a text
timeline interleaving architectural instructions with the phantom /
Spectre episodes they triggered — the tool we reach for when a new
experiment misbehaves.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..pipeline import EpisodeRecord, Reach


@dataclass
class TraceEntry:
    """One retired instruction plus the episodes it triggered."""

    pc: int
    text: str
    cycle: int
    kernel_mode: bool
    episodes: list[EpisodeRecord] = field(default_factory=list)


class Tracer:
    """Records an instruction/episode timeline from a machine."""

    def __init__(self, machine, *, limit: int = 10_000) -> None:
        self.machine = machine
        self.limit = limit
        self.entries: list[TraceEntry] = []
        self._armed = False

    # -- recording -----------------------------------------------------------

    def __enter__(self) -> "Tracer":
        cpu = self.machine.cpu
        self._saved_hook = cpu.instr_hook
        self._saved_record = cpu.record_episodes
        self._episode_mark = len(cpu.episodes)
        cpu.record_episodes = True
        cpu.instr_hook = self._on_instruction
        self._armed = True
        return self

    def __exit__(self, *exc) -> None:
        cpu = self.machine.cpu
        cpu.instr_hook = self._saved_hook
        cpu.record_episodes = self._saved_record
        self._armed = False
        self._attach_remaining_episodes()

    def _on_instruction(self, pc: int, instr) -> None:
        if len(self.entries) >= self.limit:
            return
        self._attach_remaining_episodes()
        cpu = self.machine.cpu
        self.entries.append(TraceEntry(
            pc=pc, text=str(instr), cycle=cpu.cycles,
            kernel_mode=cpu.kernel_mode))

    def _attach_remaining_episodes(self) -> None:
        cpu = self.machine.cpu
        new = cpu.episodes[self._episode_mark:]
        self._episode_mark = len(cpu.episodes)
        if self.entries and new:
            self.entries[-1].episodes.extend(new)

    # -- rendering -------------------------------------------------------------

    @staticmethod
    def _reach_tag(reach: Reach) -> str:
        return {Reach.NONE: "--", Reach.FETCH: "IF", Reach.DECODE: "ID",
                Reach.EXECUTE: "EX"}[reach]

    def render(self, *, show_episodes: bool = True) -> str:
        """Text timeline: ``cycle  mode  pc  instruction`` plus episode
        annotations indented beneath their triggering instruction."""
        lines = []
        for entry in self.entries:
            mode = "K" if entry.kernel_mode else "u"
            lines.append(f"{entry.cycle:>10d} {mode} {entry.pc:#014x}  "
                         f"{entry.text}")
            if not show_episodes:
                continue
            for ep in entry.episodes:
                flavour = "phantom" if ep.frontend_resteer else "spectre"
                nested = " nested" if ep.nested else ""
                predicted = (ep.predicted_kind.value
                             if ep.predicted_kind else "none")
                lines.append(
                    f"{'':>10s} |  {flavour}{nested}: predicted "
                    f"{predicted} at {ep.source_pc:#x} -> "
                    f"{ep.target:#x} reach={self._reach_tag(ep.reach)}")
        return "\n".join(lines)

    def episode_count(self, *, frontend: bool | None = None) -> int:
        total = 0
        for entry in self.entries:
            for ep in entry.episodes:
                if frontend is None or ep.frontend_resteer == frontend:
                    total += 1
        return total
