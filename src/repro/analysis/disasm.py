"""Disassembly of images into instructions and basic blocks.

Linear sweep within reachable regions plus recursive descent across
direct control-flow edges.  The decoder is the same one the pipeline
uses, so the analysis sees exactly the bytes the frontend would.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import DecodeError
from ..isa import BranchKind, Image, Instruction, Mnemonic, decode


@dataclass(frozen=True)
class DecodedInstr:
    """An instruction pinned to its address."""

    pc: int
    instr: Instruction

    @property
    def end(self) -> int:
        return self.pc + self.instr.length

    @property
    def kind(self) -> BranchKind:
        return self.instr.branch_kind

    def target(self) -> int | None:
        return self.instr.target(self.pc)

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return f"{self.pc:#x}: {self.instr}"


#: Mnemonics that end a basic block without a successor inside the fn.
_TERMINATORS = frozenset({Mnemonic.RET, Mnemonic.HLT, Mnemonic.UD2,
                          Mnemonic.SYSRET, Mnemonic.JMP,
                          Mnemonic.JMP_SHORT, Mnemonic.JMP_REG})


@dataclass
class BasicBlock:
    """A maximal straight-line instruction sequence."""

    start: int
    instructions: list[DecodedInstr] = field(default_factory=list)

    @property
    def end(self) -> int:
        return self.instructions[-1].end if self.instructions else self.start

    @property
    def terminator(self) -> DecodedInstr | None:
        return self.instructions[-1] if self.instructions else None

    def successors(self) -> list[tuple[int, str]]:
        """Static successor addresses with edge labels.

        Labels: ``fallthrough``, ``taken``, ``call`` (the call target;
        the return continuation is a fallthrough edge), ``jump``.
        Indirect targets are unknown and yield no edge.
        """
        term = self.terminator
        if term is None:
            return []
        kind = term.kind
        out: list[tuple[int, str]] = []
        if kind in (BranchKind.DIRECT,):
            out.append((term.target(), "jump"))
        elif kind is BranchKind.CONDITIONAL:
            out.append((term.target(), "taken"))
            out.append((term.end, "fallthrough"))
        elif kind is BranchKind.CALL_DIRECT:
            out.append((term.target(), "call"))
            out.append((term.end, "fallthrough"))
        elif kind in (BranchKind.RETURN, BranchKind.INDIRECT,
                      BranchKind.CALL_INDIRECT):
            if kind is BranchKind.CALL_INDIRECT:
                out.append((term.end, "fallthrough"))
        elif term.instr.mnemonic not in _TERMINATORS:
            out.append((term.end, "fallthrough"))
        return out


class Disassembler:
    """Recursive-descent disassembler over an :class:`Image`."""

    def __init__(self, image: Image) -> None:
        self.image = image
        self._bytes: dict[int, bytes] = {
            seg.base: seg.data for seg in image.segments}

    def instruction_at(self, pc: int) -> DecodedInstr | None:
        """Decode one instruction at *pc*, or None if not decodable."""
        for base, data in self._bytes.items():
            if base <= pc < base + len(data):
                try:
                    instr = decode(data, pc - base)
                except DecodeError:
                    return None
                return DecodedInstr(pc, instr)
        return None

    def linear_sweep(self, start: int, *,
                     max_bytes: int = 4096) -> list[DecodedInstr]:
        """Decode sequentially from *start* until garbage/terminator."""
        out: list[DecodedInstr] = []
        pc = start
        while pc < start + max_bytes:
            decoded = self.instruction_at(pc)
            if decoded is None:
                break
            out.append(decoded)
            if decoded.instr.mnemonic in _TERMINATORS:
                break
            pc = decoded.end
        return out

    def discover_blocks(self, entry: int, *,
                        max_blocks: int = 512) -> dict[int, BasicBlock]:
        """Recursive descent from *entry*; returns blocks by start pc."""
        blocks: dict[int, BasicBlock] = {}
        worklist = [entry]
        # First pass: find all block leaders reachable from the entry.
        leaders = {entry}
        seen_instrs: dict[int, DecodedInstr] = {}
        frontier = [entry]
        while frontier and len(leaders) < max_blocks:
            pc = frontier.pop()
            while True:
                if pc in seen_instrs:
                    break
                decoded = self.instruction_at(pc)
                if decoded is None:
                    break
                seen_instrs[pc] = decoded
                kind = decoded.kind
                if kind is BranchKind.CONDITIONAL:
                    for target in (decoded.target(), decoded.end):
                        if target not in leaders:
                            leaders.add(target)
                            frontier.append(target)
                    break
                if kind in (BranchKind.DIRECT,):
                    target = decoded.target()
                    if target not in leaders:
                        leaders.add(target)
                        frontier.append(target)
                    break
                if kind is BranchKind.CALL_DIRECT:
                    for target in (decoded.target(), decoded.end):
                        if target not in leaders:
                            leaders.add(target)
                            frontier.append(target)
                    break
                if decoded.instr.mnemonic in _TERMINATORS \
                        or kind in (BranchKind.RETURN, BranchKind.INDIRECT,
                                    BranchKind.CALL_INDIRECT):
                    break
                pc = decoded.end
        # Second pass: materialise blocks between leaders.
        for leader in sorted(leaders):
            block = BasicBlock(start=leader)
            pc = leader
            while True:
                decoded = self.instruction_at(pc)
                if decoded is None:
                    break
                block.instructions.append(decoded)
                if decoded.instr.mnemonic in _TERMINATORS \
                        or decoded.kind.is_branch:
                    break
                if decoded.end in leaders:
                    break
                pc = decoded.end
            if block.instructions:
                blocks[leader] = block
        return blocks
