"""Analysis toolkit: disassembly, CFGs, gadget scanning, tracing,
software-mitigation codegen."""

from .cfg import build_cfg, conditional_blocks, paths_after
from .corpus import (Corpus, CorpusFunction, DEFAULT_MIX, generate_corpus)
from .disasm import BasicBlock, DecodedInstr, Disassembler
from .gadgets import (ATTACKER_REGS, GadgetKind, GadgetReport, ScanSummary,
                      scan_corpus, scan_function, scan_path)
from .hardening import (emit_lfence_guard, emit_retpoline,
                        emit_retpoline_call)
from .rewrite import (FunctionCode, RewriteItem, emit_function,
                      harden_function, insert_lfence_after_conditionals,
                      lift_function, retpoline_indirect_branches)
from .tracer import TraceEntry, Tracer

__all__ = [
    "ATTACKER_REGS",
    "BasicBlock",
    "Corpus",
    "CorpusFunction",
    "DEFAULT_MIX",
    "DecodedInstr",
    "Disassembler",
    "GadgetKind",
    "GadgetReport",
    "ScanSummary",
    "TraceEntry",
    "Tracer",
    "build_cfg",
    "conditional_blocks",
    "emit_lfence_guard",
    "emit_retpoline",
    "emit_retpoline_call",
    "emit_function",
    "FunctionCode",
    "RewriteItem",
    "generate_corpus",
    "harden_function",
    "insert_lfence_after_conditionals",
    "lift_function",
    "paths_after",
    "retpoline_indirect_branches",
    "scan_corpus",
    "scan_function",
    "scan_path",
]
