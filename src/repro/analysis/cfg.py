"""Control-flow graphs over disassembled basic blocks (networkx)."""

from __future__ import annotations

import networkx as nx

from ..isa import Image
from .disasm import BasicBlock, Disassembler


def build_cfg(image: Image, entry: int, *,
              max_blocks: int = 512) -> nx.DiGraph:
    """CFG reachable from *entry*: nodes are block start addresses with
    a ``block`` attribute; edges carry a ``label`` attribute
    (fallthrough / taken / jump / call)."""
    disasm = Disassembler(image)
    blocks = disasm.discover_blocks(entry, max_blocks=max_blocks)
    graph = nx.DiGraph()
    for start, block in blocks.items():
        graph.add_node(start, block=block)
    for start, block in blocks.items():
        for target, label in block.successors():
            if target in blocks:
                graph.add_edge(start, target, label=label)
    return graph


def conditional_blocks(graph: nx.DiGraph) -> list[BasicBlock]:
    """Blocks ending in a conditional branch (potential v1 sources)."""
    out = []
    for _, data in graph.nodes(data=True):
        block: BasicBlock = data["block"]
        term = block.terminator
        if term is not None and term.kind.value == "jcc":
            out.append(block)
    return out


def paths_after(graph: nx.DiGraph, block: BasicBlock, *,
                max_instructions: int = 24) -> list[list]:
    """Instruction sequences along each CFG path leaving *block*,
    bounded by *max_instructions* (the speculation window depth)."""
    paths = []
    term = block.terminator

    def walk(node: int, acc: list, budget: int) -> None:
        data = graph.nodes.get(node)
        if data is None or budget <= 0:
            paths.append(acc)
            return
        blk: BasicBlock = data["block"]
        instrs = blk.instructions[:budget]
        acc = acc + instrs
        budget -= len(instrs)
        succs = list(graph.successors(node))
        if not succs or budget <= 0:
            paths.append(acc)
            return
        for succ in succs:
            walk(succ, acc, budget)

    for succ in graph.successors(block.start):
        walk(succ, [], max_instructions)
    return paths
