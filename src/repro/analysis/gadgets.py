"""Speculative disclosure-gadget scanner (paper §9.3, Kasper-style).

Conventional Spectre-v1 gadgets need *two* dependent loads behind a
mispredictable bounds check: one fetching the secret, one transmitting
it through the cache.  Phantom's P3 supplies the transmitting load
elsewhere, so any bounds-checked path with a *single*
attacker-controlled load (an "MDS gadget") becomes exploitable — which
is how the paper, based on Kasper's numbers, estimates the gadget
population growing ~4x (183 -> 722).

The scanner walks CFG paths behind conditional branches with a simple
register taint analysis:

* attacker taint enters through the ABI argument registers;
* a load whose address is attacker-tainted marks its destination
  SECRET;
* a load whose address is SECRET-tainted is a transmission — the
  classic v1 double-load;
* ``lfence`` ends the speculative path (the §8.2 mitigation).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import networkx as nx

from ..isa import Image, Mnemonic, Reg
from .cfg import build_cfg, conditional_blocks, paths_after
from .disasm import DecodedInstr

#: Registers carrying attacker-controlled syscall arguments.
ATTACKER_REGS = frozenset({Reg.RDI, Reg.RSI, Reg.RDX})


class Taint(enum.Enum):
    CLEAN = 0
    ATTACKER = 1
    SECRET = 2


class GadgetKind(enum.Enum):
    #: Double load: exploitable by conventional Spectre.
    SPECTRE_V1 = "spectre-v1"
    #: Single attacker-controlled load: exploitable only with P3.
    MDS_SINGLE_LOAD = "mds-single-load"


@dataclass(frozen=True)
class GadgetReport:
    """One finding: a speculative path that discloses."""

    kind: GadgetKind
    branch_pc: int       # the mispredictable conditional
    load_pc: int         # the (first) attacker-controlled load
    second_load_pc: int | None = None


def _propagate(instr: DecodedInstr, taint: dict[Reg, Taint]
               ) -> tuple[Taint | None, bool]:
    """Update *taint* for one instruction.

    Returns ``(load_taint, is_fence)`` where ``load_taint`` is the
    address taint of a load performed by this instruction (None when it
    does not load).
    """
    i = instr.instr
    m = i.mnemonic
    if i.is_fence:
        return None, True
    if m is Mnemonic.MOV_RI:
        taint[i.dest] = Taint.CLEAN
        return None, False
    if m is Mnemonic.MOV_RR:
        taint[i.dest] = taint.get(i.src, Taint.CLEAN)
        return None, False
    if m is Mnemonic.LEA:
        taint[i.dest] = taint.get(i.base, Taint.CLEAN)
        return None, False
    if m in (Mnemonic.MOV_RM, Mnemonic.MOVB_RM):
        addr_taint = taint.get(i.base, Taint.CLEAN)
        taint[i.dest] = Taint.SECRET if addr_taint is not Taint.CLEAN \
            else Taint.CLEAN
        return addr_taint, False
    if m is Mnemonic.XOR_RR and i.dest == i.src:
        taint[i.dest] = Taint.CLEAN
        return None, False
    if m in (Mnemonic.ADD_RR, Mnemonic.SUB_RR, Mnemonic.XOR_RR,
             Mnemonic.OR_RR):
        a = taint.get(i.dest, Taint.CLEAN)
        b = taint.get(i.src, Taint.CLEAN)
        taint[i.dest] = max(a, b, key=lambda t: t.value)
        return None, False
    if m is Mnemonic.AND_RI and 0 <= (i.imm or 0) <= 0xFFF:
        # The array_index_nospec idiom (§2.4 [74]): masking the index
        # to a small bound makes the speculative dereference harmless —
        # the value can no longer select attacker-chosen addresses.
        taint[i.dest] = Taint.CLEAN
        return None, False
    if m in (Mnemonic.ADD_RI, Mnemonic.SUB_RI, Mnemonic.AND_RI,
             Mnemonic.SHL_RI, Mnemonic.SHR_RI):
        return None, False   # arithmetic on an immediate keeps taint
    if m is Mnemonic.POP:
        taint[i.dest] = Taint.CLEAN
        return None, False
    return None, False


def scan_path(branch_pc: int, path: list[DecodedInstr]
              ) -> GadgetReport | None:
    """Classify one speculative path; returns the strongest finding."""
    taint: dict[Reg, Taint] = {reg: Taint.ATTACKER for reg in ATTACKER_REGS}
    first_load: int | None = None
    for instr in path:
        load_taint, fence = _propagate(instr, taint)
        if fence:
            break   # lfence: speculation cannot proceed past here
        if load_taint is Taint.ATTACKER and first_load is None:
            first_load = instr.pc
        elif load_taint is Taint.SECRET and first_load is not None:
            return GadgetReport(GadgetKind.SPECTRE_V1, branch_pc,
                                first_load, instr.pc)
    if first_load is not None:
        return GadgetReport(GadgetKind.MDS_SINGLE_LOAD, branch_pc,
                            first_load)
    return None


def scan_function(image: Image, entry: int, *,
                  window: int = 24) -> list[GadgetReport]:
    """All gadget findings reachable from *entry* (deduplicated,
    strongest-kind-per-branch)."""
    graph = build_cfg(image, entry)
    best: dict[int, GadgetReport] = {}
    for block in conditional_blocks(graph):
        branch_pc = block.terminator.pc
        for path in paths_after(graph, block, max_instructions=window):
            report = scan_path(branch_pc, path)
            if report is None:
                continue
            current = best.get(branch_pc)
            if current is None \
                    or (current.kind is GadgetKind.MDS_SINGLE_LOAD
                        and report.kind is GadgetKind.SPECTRE_V1):
                best[branch_pc] = report
    return sorted(best.values(), key=lambda r: r.branch_pc)


@dataclass
class ScanSummary:
    """Corpus-level gadget census."""

    spectre_v1: int = 0
    mds_single_load: int = 0

    @property
    def conventional_exploitable(self) -> int:
        return self.spectre_v1

    @property
    def phantom_exploitable(self) -> int:
        """With P3 every single-load gadget transmits too (§9.3)."""
        return self.spectre_v1 + self.mds_single_load

    @property
    def amplification(self) -> float:
        if not self.spectre_v1:
            return float("inf")
        return self.phantom_exploitable / self.spectre_v1


def scan_corpus(image: Image, entries: list[int], *,
                window: int = 24) -> ScanSummary:
    """Scan every function and tally the gadget classes."""
    summary = ScanSummary()
    for entry in entries:
        for report in scan_function(image, entry, window=window):
            if report.kind is GadgetKind.SPECTRE_V1:
                summary.spectre_v1 += 1
            else:
                summary.mds_single_load += 1
    return summary
