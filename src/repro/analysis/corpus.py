"""Synthetic kernel-function corpus for gadget-census experiments.

The paper (§9.3) cites Kasper's Linux-kernel numbers: 183 conventional
Spectre gadgets versus 722 once Phantom's single-load gadgets count —
about a 4x amplification.  We cannot scan Linux here, so this module
generates a corpus of kernel-ish functions whose gadget-class mix is
drawn from configurable frequencies; the default mix reflects Kasper's
relative proportions.  The census experiment then runs the *scanner*
over the corpus and checks it recovers the implanted ground truth —
the reproduction target is the methodology and the amplification
ratio, not Linux's absolute counts.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ..isa import Assembler, Cond, Image, Reg

#: Default template mix (relative weights).  ``v1`` and ``mds`` mirror
#: Kasper's 183:539 split between double-load and single-load gadgets;
#: the harmless templates model the bulk of kernel code.
DEFAULT_MIX: dict[str, int] = {
    "v1_double_load": 183,
    "mds_single_load": 539,
    "checked_clean_load": 400,
    "nospec_masked_load": 300,
    "unchecked_load": 500,
    "alu_only": 800,
}


@dataclass
class CorpusFunction:
    """Ground truth for one generated function."""

    name: str
    entry: int
    template: str


@dataclass
class Corpus:
    """A generated image plus the implanted ground truth."""

    image: Image
    functions: list[CorpusFunction] = field(default_factory=list)

    @property
    def entries(self) -> list[int]:
        return [fn.entry for fn in self.functions]

    def count(self, template: str) -> int:
        return sum(fn.template == template for fn in self.functions)


def _emit_prologue(asm: Assembler) -> None:
    asm.push(Reg.RBP)
    asm.mov_rr(Reg.RBP, Reg.RSP)


def _emit_epilogue(asm: Assembler) -> None:
    asm.pop(Reg.RBP)
    asm.ret()


def _template_v1(asm: Assembler, data_base: int, uid: str,
                 hardened: bool) -> None:
    """Bounds check guarding two dependent loads (classic v1)."""
    _emit_prologue(asm)
    asm.cmp_ri(Reg.RDI, 64)
    asm.jcc(Cond.AE, f"out_{uid}")
    if hardened:
        asm.lfence()
    asm.mov_ri(Reg.RCX, data_base)
    asm.add_rr(Reg.RCX, Reg.RDI)
    asm.loadb(Reg.RAX, Reg.RCX)          # secret = array[idx]
    asm.shl_ri(Reg.RAX, 6)
    asm.mov_ri(Reg.RBX, data_base + 0x1000)
    asm.add_rr(Reg.RBX, Reg.RAX)
    asm.loadb(Reg.R9, Reg.RBX)           # transmit via cache
    asm.label(f"out_{uid}")
    _emit_epilogue(asm)


def _template_mds(asm: Assembler, data_base: int, uid: str,
                  hardened: bool) -> None:
    """Bounds check guarding a single load + call (Listing 4 shape)."""
    _emit_prologue(asm)
    asm.cmp_ri(Reg.RDI, 64)
    asm.jcc(Cond.AE, f"out_{uid}")
    if hardened:
        asm.lfence()
    asm.mov_ri(Reg.RCX, data_base)
    asm.add_rr(Reg.RCX, Reg.RDI)
    asm.loadb(Reg.RAX, Reg.RCX)          # single attacker-indexed load
    asm.call(f"parse_{uid}")
    asm.label(f"out_{uid}")
    _emit_epilogue(asm)
    asm.label(f"parse_{uid}")
    asm.nop()
    asm.ret()


def _template_checked_clean(asm: Assembler, data_base: int, uid: str,
                            hardened: bool) -> None:
    """Bounds check, but the guarded load address is not tainted."""
    _emit_prologue(asm)
    asm.cmp_ri(Reg.RDI, 64)
    asm.jcc(Cond.AE, f"out_{uid}")
    asm.mov_ri(Reg.RCX, data_base + 0x2000)
    asm.load(Reg.RAX, Reg.RCX, 0x10)     # fixed-address load: harmless
    asm.label(f"out_{uid}")
    _emit_epilogue(asm)


def _template_nospec(asm: Assembler, data_base: int, uid: str,
                     hardened: bool) -> None:
    """array_index_nospec: the index is masked to the array bound, so
    the speculative dereference cannot reach attacker-chosen memory."""
    _emit_prologue(asm)
    asm.cmp_ri(Reg.RDI, 64)
    asm.jcc(Cond.AE, f"out_{uid}")
    asm.and_ri(Reg.RDI, 63)              # the nospec mask
    asm.mov_ri(Reg.RCX, data_base)
    asm.add_rr(Reg.RCX, Reg.RDI)
    asm.loadb(Reg.RAX, Reg.RCX)
    asm.label(f"out_{uid}")
    _emit_epilogue(asm)


def _template_unchecked(asm: Assembler, data_base: int, uid: str,
                        hardened: bool) -> None:
    """Attacker-indexed load with no mispredictable guard."""
    _emit_prologue(asm)
    asm.mov_ri(Reg.RCX, data_base)
    asm.add_rr(Reg.RCX, Reg.RDI)
    asm.loadb(Reg.RAX, Reg.RCX)
    _emit_epilogue(asm)


def _template_alu(asm: Assembler, data_base: int, uid: str,
                  hardened: bool) -> None:
    _emit_prologue(asm)
    asm.mov_rr(Reg.RAX, Reg.RDI)
    asm.shl_ri(Reg.RAX, 2)
    asm.add_rr(Reg.RAX, Reg.RSI)
    asm.xor_rr(Reg.RDX, Reg.RAX)
    _emit_epilogue(asm)


_TEMPLATES = {
    "v1_double_load": _template_v1,
    "mds_single_load": _template_mds,
    "checked_clean_load": _template_checked_clean,
    "nospec_masked_load": _template_nospec,
    "unchecked_load": _template_unchecked,
    "alu_only": _template_alu,
}


def generate_corpus(*, base: int = 0xFFFF_FFFF_D000_0000,
                    data_base: int = 0xFFFF_FFFF_D800_0000,
                    mix: dict[str, int] | None = None,
                    total: int = 400, seed: int = 0,
                    hardened: bool = False) -> Corpus:
    """Generate *total* functions sampled from *mix* (with the implanted
    template recorded as ground truth).  ``hardened=True`` inserts an
    ``lfence`` after each gadget's bounds check (§8.2's mitigation)."""
    mix = mix or DEFAULT_MIX
    rng = random.Random(seed)
    population = list(mix)
    weights = [mix[t] for t in population]

    asm = Assembler(base)
    functions: list[CorpusFunction] = []
    for i in range(total):
        template = rng.choices(population, weights)[0]
        asm.align(32)
        name = f"fn_{i}_{template}"
        entry = asm.label(name)
        _TEMPLATES[template](asm, data_base, str(i), hardened)
        functions.append(CorpusFunction(name=name, entry=entry,
                                        template=template))
    asm.hlt()
    return Corpus(image=asm.image(), functions=functions)
