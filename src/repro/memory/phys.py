"""Sparse physical memory backing store.

Pages are allocated lazily, so simulating the paper's 8 GB (Zen 1) and
64 GB (EPYC 7252) machines costs memory proportional only to the pages
actually touched.
"""

from __future__ import annotations

from ..errors import MemoryError_
from ..params import PAGE_SHIFT, PAGE_SIZE


class PhysicalMemory:
    """Byte-addressable physical memory of a fixed size."""

    def __init__(self, size: int) -> None:
        if size <= 0 or size % PAGE_SIZE:
            raise ValueError(f"size must be a positive page multiple: {size}")
        self.size = size
        self._pages: dict[int, bytearray] = {}

    @property
    def page_count(self) -> int:
        return self.size >> PAGE_SHIFT

    def _page(self, pfn: int) -> bytearray:
        page = self._pages.get(pfn)
        if page is None:
            page = bytearray(PAGE_SIZE)
            self._pages[pfn] = page
        return page

    def _check(self, addr: int, size: int) -> None:
        if addr < 0 or size < 0 or addr + size > self.size:
            raise MemoryError_(
                f"physical access [{addr:#x},{addr + size:#x}) outside "
                f"{self.size:#x}-byte memory")

    def read(self, addr: int, size: int) -> bytes:
        """Read *size* bytes at physical address *addr*."""
        self._check(addr, size)
        out = bytearray()
        while size:
            pfn, off = addr >> PAGE_SHIFT, addr & (PAGE_SIZE - 1)
            chunk = min(size, PAGE_SIZE - off)
            page = self._pages.get(pfn)
            if page is None:
                out += bytes(chunk)
            else:
                out += page[off:off + chunk]
            addr += chunk
            size -= chunk
        return bytes(out)

    def write(self, addr: int, data: bytes) -> None:
        """Write *data* at physical address *addr*."""
        self._check(addr, len(data))
        pos = 0
        while pos < len(data):
            pfn, off = addr >> PAGE_SHIFT, addr & (PAGE_SIZE - 1)
            chunk = min(len(data) - pos, PAGE_SIZE - off)
            self._page(pfn)[off:off + chunk] = data[pos:pos + chunk]
            addr += chunk
            pos += chunk

    def read_int(self, addr: int, size: int) -> int:
        return int.from_bytes(self.read(addr, size), "little")

    def write_int(self, addr: int, size: int, value: int) -> None:
        self.write(addr, (value & ((1 << (8 * size)) - 1)).to_bytes(size,
                                                                    "little"))
