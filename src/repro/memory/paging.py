"""Page tables: virtual-to-physical translation with x86-style permissions.

The model is a flat dictionary of 4 KiB page translations (the paging
radix tree is irrelevant to the experiments; only permissions, presence
and physical contiguity matter).  ``huge`` marks pages belonging to a
2 MiB transparent huge page, which the physmap exploit needs for L2
Prime+Probe eviction sets.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import PageFault
from ..params import (HUGE_PAGE_SIZE, PAGE_SHIFT, PAGE_SIZE, canonical,
                      is_canonical)


@dataclass
class PTE:
    """Page table entry for one 4 KiB virtual page."""

    pfn: int
    writable: bool = True
    user: bool = False
    nx: bool = False
    huge: bool = False

    @property
    def executable(self) -> bool:
        return not self.nx


@dataclass
class LinearRange:
    """A large linear mapping ``[va, va+size) -> [pa, pa+size)``.

    Used for the kernel image and physmap, whose sizes (up to 64 GB)
    make per-page PTEs impractical.  Individual pages inside a range can
    still be overridden by materialising a PTE (``set_attrs``).
    """

    va: int
    pa: int
    size: int
    writable: bool = True
    user: bool = False
    nx: bool = False

    def covers(self, va: int) -> bool:
        return self.va <= va < self.va + self.size

    def pte_for(self, va: int) -> PTE:
        off = (va - self.va) & ~(PAGE_SIZE - 1)
        return PTE(pfn=(self.pa + off) >> PAGE_SHIFT, writable=self.writable,
                   user=self.user, nx=self.nx, huge=True)


class AddressSpace:
    """One process/kernel address space.

    ``generation`` increments on every page-table mutation (map, unmap,
    attribute change).  Translation caches — :class:`TranslationFront`
    and the CPU's transient decode cache — compare it against the value
    they captured and flush wholesale on mismatch, so they never need to
    know *which* page changed.
    """

    def __init__(self) -> None:
        self._ptes: dict[int, PTE] = {}
        self._ranges: list[LinearRange] = []
        self.generation = 0

    def map_page(self, va: int, pa: int, *, writable: bool = True,
                 user: bool = False, nx: bool = False,
                 huge: bool = False) -> None:
        """Install a 4 KiB translation ``va -> pa``."""
        if va & (PAGE_SIZE - 1) or pa & (PAGE_SIZE - 1):
            raise ValueError(f"unaligned mapping {va:#x} -> {pa:#x}")
        if not is_canonical(va):
            raise ValueError(f"non-canonical va {va:#x}")
        self._ptes[va >> PAGE_SHIFT] = PTE(pfn=pa >> PAGE_SHIFT,
                                           writable=writable, user=user,
                                           nx=nx, huge=huge)
        self.generation += 1

    def map_range(self, va: int, pa: int, size: int, *, writable: bool = True,
                  user: bool = False, nx: bool = False,
                  huge: bool = False) -> None:
        """Map a physically contiguous range page by page."""
        if size % PAGE_SIZE:
            raise ValueError(f"size not page aligned: {size:#x}")
        for off in range(0, size, PAGE_SIZE):
            self.map_page(va + off, pa + off, writable=writable, user=user,
                          nx=nx, huge=huge)

    def map_huge_page(self, va: int, pa: int, **attrs) -> None:
        """Map one 2 MiB physically contiguous huge page."""
        if va & (HUGE_PAGE_SIZE - 1) or pa & (HUGE_PAGE_SIZE - 1):
            raise ValueError(f"unaligned huge mapping {va:#x} -> {pa:#x}")
        self.map_range(va, pa, HUGE_PAGE_SIZE, huge=True, **attrs)

    def unmap(self, va: int, size: int = PAGE_SIZE) -> None:
        for off in range(0, size, PAGE_SIZE):
            self._ptes.pop((va + off) >> PAGE_SHIFT, None)
        self.generation += 1

    def map_linear(self, va: int, pa: int, size: int, *,
                   writable: bool = True, user: bool = False,
                   nx: bool = False) -> None:
        """Install a large linear mapping without per-page PTEs."""
        if va & (PAGE_SIZE - 1) or pa & (PAGE_SIZE - 1) \
                or size & (PAGE_SIZE - 1):
            raise ValueError("linear mapping must be page aligned")
        if not is_canonical(va):
            raise ValueError(f"non-canonical va {va:#x}")
        new = LinearRange(canonical(va), pa, size, writable=writable,
                          user=user, nx=nx)
        for other in self._ranges:
            if new.va < other.va + other.size and other.va < new.va + new.size:
                raise ValueError(
                    f"linear range {va:#x}+{size:#x} overlaps existing")
        self._ranges.append(new)
        self.generation += 1

    def _range_for(self, va: int) -> LinearRange | None:
        for rng_ in self._ranges:
            if rng_.covers(va):
                return rng_
        return None

    def pte(self, va: int) -> PTE | None:
        """Return the PTE covering *va*, or None."""
        va = canonical(va)
        entry = self._ptes.get(va >> PAGE_SHIFT)
        if entry is not None:
            return entry
        covering = self._range_for(va)
        if covering is not None:
            return covering.pte_for(va)
        return None

    def set_attrs(self, va: int, **attrs) -> None:
        """Alter attributes of an existing PTE (the paper's K-page trick).

        Pages covered only by a linear range are materialised as
        individual PTEs first (they then shadow the range).
        """
        entry = self.pte(va)
        if entry is None:
            raise KeyError(f"no mapping at {va:#x}")
        key = canonical(va) >> PAGE_SHIFT
        if key not in self._ptes:
            self._ptes[key] = entry
        entry = self._ptes[key]
        for name, value in attrs.items():
            if not hasattr(entry, name):
                raise AttributeError(name)
            setattr(entry, name, value)
        self.generation += 1

    def is_mapped(self, va: int) -> bool:
        return self.pte(va) is not None

    def translate(self, va: int, *, write: bool = False, exec_: bool = False,
                  user_mode: bool = False) -> int:
        """Translate *va*, enforcing permissions.  Raises PageFault.

        ``user_mode`` is the privilege of the access; supervisor-mode
        code may access user pages (SMEP/SMAP are not modelled — the
        paper's kernels allow the transient loads the exploits rely on).
        """
        va = canonical(va)
        entry = self._ptes.get(va >> PAGE_SHIFT)
        if entry is None:
            covering = self._range_for(va)
            if covering is not None:
                entry = covering.pte_for(va)
        if entry is None:
            raise PageFault(va, present=False, write=write, user=user_mode,
                            exec_=exec_)
        if user_mode and not entry.user:
            raise PageFault(va, present=True, write=write, user=True,
                            exec_=exec_)
        if write and not entry.writable:
            raise PageFault(va, present=True, write=True, user=user_mode)
        if exec_ and entry.nx:
            raise PageFault(va, present=True, user=user_mode, exec_=True)
        return (entry.pfn << PAGE_SHIFT) | (va & (PAGE_SIZE - 1))

    def translate_noperm(self, va: int) -> int | None:
        """Translate without permission checks (for test introspection)."""
        entry = self.pte(va)
        if entry is None:
            return None
        return (entry.pfn << PAGE_SHIFT) | (va & (PAGE_SIZE - 1))

    def mapped_pages(self) -> int:
        return len(self._ptes)


#: Cache sentinel distinguishing "never looked up" from "known unmapped".
_UNRESOLVED = object()


class TranslationFront:
    """Software TLB in front of :meth:`AddressSpace.translate`.

    Caches the *resolved PTE* (or ``None`` for unmapped pages) per
    virtual page number, so a warm translation costs one dict probe
    instead of a PTE lookup plus a linear scan of the address space's
    ``LinearRange`` list.  Permission checks still run per access —
    they depend on the access type — and replicate
    :meth:`AddressSpace.translate` bit for bit, including the exact
    :class:`~repro.errors.PageFault` attribute combinations.

    Coherence: the cache is valid only for the :attr:`AddressSpace
    .generation` it was filled under; any page-table mutation bumps the
    generation and the next translation flushes wholesale.  PTEs that
    live in the page-table dict are cached by identity, so in-place
    attribute updates through ``set_attrs`` would be coherent even
    without the generation bump; materialised range PTEs are snapshots
    and rely on it.
    """

    __slots__ = ("aspace", "_ptes", "_generation")

    def __init__(self, aspace: AddressSpace) -> None:
        self.aspace = aspace
        self._ptes: dict[int, PTE | None] = {}
        self._generation = aspace.generation

    def translate(self, va: int, *, write: bool = False, exec_: bool = False,
                  user_mode: bool = False) -> int:
        """Drop-in replacement for :meth:`AddressSpace.translate`."""
        aspace = self.aspace
        if self._generation != aspace.generation:
            self._ptes.clear()
            self._generation = aspace.generation
        va = canonical(va)
        vpn = va >> PAGE_SHIFT
        entry = self._ptes.get(vpn, _UNRESOLVED)
        if entry is _UNRESOLVED:
            entry = aspace._ptes.get(vpn)
            if entry is None:
                covering = aspace._range_for(va)
                if covering is not None:
                    entry = covering.pte_for(va)
            self._ptes[vpn] = entry
        if entry is None:
            raise PageFault(va, present=False, write=write, user=user_mode,
                            exec_=exec_)
        if user_mode and not entry.user:
            raise PageFault(va, present=True, write=write, user=True,
                            exec_=exec_)
        if write and not entry.writable:
            raise PageFault(va, present=True, write=True, user=user_mode)
        if exec_ and entry.nx:
            raise PageFault(va, present=True, user=user_mode, exec_=True)
        return (entry.pfn << PAGE_SHIFT) | (va & (PAGE_SIZE - 1))
