"""Set-associative cache model with LRU/random replacement.

The cache stores full line addresses (not just tags) so an inclusive
outer level can back-invalidate inner levels on eviction, and so tests
and Prime+Probe code can reason about exactly which lines are resident.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass, field

from ..params import CACHE_LINE, CACHE_LINE_SHIFT
from ..telemetry import metrics as _metrics

_REG = _metrics.REGISTRY


class Replacement(enum.Enum):
    LRU = "lru"
    RANDOM = "random"


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0
    evictions: int = 0
    flushes: int = 0

    def reset(self) -> None:
        self.hits = self.misses = self.evictions = self.flushes = 0


@dataclass
class _Way:
    line: int           # full line address (line-aligned)
    last_used: int      # LRU timestamp


class Cache:
    """One level of set-associative cache.

    Addresses handed to the cache may be virtual or physical; the cache
    is agnostic and the owner decides (L1/L2 here are physically
    indexed; the µop cache is virtually indexed per the paper).
    """

    def __init__(self, name: str, size: int, ways: int,
                 line_size: int = CACHE_LINE,
                 replacement: Replacement = Replacement.LRU,
                 rng: random.Random | None = None) -> None:
        if size % (ways * line_size):
            raise ValueError(f"{name}: size {size} not divisible by "
                             f"ways*line ({ways}*{line_size})")
        self.name = name
        self.size = size
        self.ways = ways
        self.line_size = line_size
        self.num_sets = size // (ways * line_size)
        if self.num_sets & (self.num_sets - 1):
            raise ValueError(f"{name}: set count {self.num_sets} not a "
                             f"power of two")
        self.replacement = replacement
        self._rng = rng or random.Random(0)
        self._sets: list[list[_Way]] = [[] for _ in range(self.num_sets)]
        self._tick = 0
        self.stats = CacheStats()
        # Telemetry instruments (no-op unless the registry is enabled).
        self._m_hits = _metrics.counter("cache_hits", level=name)
        self._m_misses = _metrics.counter("cache_misses", level=name)
        self._m_evictions = _metrics.counter("cache_evictions", level=name)

    # -- geometry ----------------------------------------------------------

    def line_addr(self, addr: int) -> int:
        return addr & ~(self.line_size - 1)

    def set_index(self, addr: int) -> int:
        return (addr >> CACHE_LINE_SHIFT) & (self.num_sets - 1)

    # -- operations --------------------------------------------------------

    def lookup(self, addr: int) -> bool:
        """Non-destructive presence check (no fill, no LRU update)."""
        line = self.line_addr(addr)
        return any(w.line == line for w in self._sets[self.set_index(addr)])

    def access(self, addr: int) -> tuple[bool, int | None]:
        """Access *addr*: returns ``(hit, evicted_line_or_None)``.

        On a miss the line is filled, possibly evicting the LRU (or a
        random) victim from the set.
        """
        self._tick += 1
        line = self.line_addr(addr)
        ways = self._sets[self.set_index(addr)]
        for way in ways:
            if way.line == line:
                way.last_used = self._tick
                self.stats.hits += 1
                if _REG.enabled:
                    self._m_hits.value += 1
                return True, None
        self.stats.misses += 1
        if _REG.enabled:
            self._m_misses.value += 1
        evicted = None
        if len(ways) >= self.ways:
            if self.replacement is Replacement.LRU:
                victim = min(range(len(ways)), key=lambda i: ways[i].last_used)
            else:
                victim = self._rng.randrange(len(ways))
            evicted = ways.pop(victim).line
            self.stats.evictions += 1
            if _REG.enabled:
                self._m_evictions.value += 1
        ways.append(_Way(line=line, last_used=self._tick))
        return False, evicted

    def fill(self, addr: int) -> int | None:
        """Fill *addr*'s line without counting a hit/miss (prefetch path)."""
        hit, evicted = self.access(addr)
        if hit:
            self.stats.hits -= 1
            if _REG.enabled:
                self._m_hits.value -= 1
        else:
            self.stats.misses -= 1
            if _REG.enabled:
                self._m_misses.value -= 1
            if evicted is not None:
                self.stats.evictions -= 1
                if _REG.enabled:
                    self._m_evictions.value -= 1
        return evicted

    def invalidate(self, addr: int) -> bool:
        """Drop *addr*'s line if present.  Returns True if it was resident."""
        line = self.line_addr(addr)
        ways = self._sets[self.set_index(addr)]
        for i, way in enumerate(ways):
            if way.line == line:
                ways.pop(i)
                self.stats.flushes += 1
                return True
        return False

    def flush_all(self) -> None:
        for ways in self._sets:
            ways.clear()
        self.stats.flushes += 1

    # -- introspection (tests / attack tooling) -----------------------------

    def resident_lines(self, set_index: int) -> list[int]:
        """Line addresses currently resident in *set_index* (MRU last)."""
        ways = self._sets[set_index]
        return [w.line for w in sorted(ways, key=lambda w: w.last_used)]

    def set_occupancy(self, set_index: int) -> int:
        return len(self._sets[set_index])
