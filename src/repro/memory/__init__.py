"""Memory substrate: physical memory, paging, caches, TLBs."""

from .cache import Cache, CacheStats, Replacement
from .hierarchy import CacheGeometry, HierarchyParams, MemoryHierarchy
from .paging import PTE, AddressSpace, TranslationFront
from .phys import PhysicalMemory
from .system import FrameAllocator, MemorySystem
from .tlb import TLB

__all__ = [
    "AddressSpace",
    "Cache",
    "CacheGeometry",
    "CacheStats",
    "FrameAllocator",
    "HierarchyParams",
    "MemoryHierarchy",
    "MemorySystem",
    "PhysicalMemory",
    "PTE",
    "Replacement",
    "TLB",
    "TranslationFront",
]
