"""A small fully-associative TLB.

Only timing is modelled: translation correctness always comes from the
page tables.  A TLB miss adds a page-walk penalty, which contributes
realistic noise floor to the timing side channels.
"""

from __future__ import annotations

from collections import OrderedDict

from ..params import PAGE_SHIFT


class TLB:
    """LRU translation cache keyed by virtual page number."""

    def __init__(self, entries: int = 64, walk_penalty: int = 20) -> None:
        self.entries = entries
        self.walk_penalty = walk_penalty
        self._map: OrderedDict[int, int] = OrderedDict()
        self.hits = 0
        self.misses = 0

    def access(self, va: int) -> int:
        """Record a translation of *va*; returns added latency in cycles."""
        vpn = va >> PAGE_SHIFT
        if vpn in self._map:
            self._map.move_to_end(vpn)
            self.hits += 1
            return 0
        self.misses += 1
        self._map[vpn] = vpn
        if len(self._map) > self.entries:
            self._map.popitem(last=False)
        return self.walk_penalty

    def flush(self) -> None:
        """Full TLB flush (context switch without PCID)."""
        self._map.clear()

    def flush_page(self, va: int) -> None:
        self._map.pop(va >> PAGE_SHIFT, None)
