"""Cache hierarchy: split L1 (I/D) over a unified, inclusive L2.

Timing model: an access costs the hit latency of the level it hits in;
a full miss costs the memory latency.  L2 is inclusive — evicting a
line from L2 back-invalidates it from both L1s, which is what makes
L2 Prime+Probe (paper §7.2) evict victim lines for real.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ..params import CACHE_LINE
from .cache import Cache, Replacement


@dataclass(frozen=True)
class CacheGeometry:
    size: int
    ways: int

    @property
    def sets(self) -> int:
        return self.size // (self.ways * CACHE_LINE)


@dataclass(frozen=True)
class HierarchyParams:
    """Geometry and latency knobs (defaults approximate AMD Zen)."""

    l1i: CacheGeometry = CacheGeometry(32 * 1024, 8)
    l1d: CacheGeometry = CacheGeometry(32 * 1024, 8)
    l2: CacheGeometry = CacheGeometry(512 * 1024, 8)
    l1_latency: int = 4
    l2_latency: int = 14
    mem_latency: int = 150
    replacement: Replacement = Replacement.LRU


class MemoryHierarchy:
    """Physically indexed L1I + L1D over inclusive unified L2."""

    def __init__(self, params: HierarchyParams | None = None,
                 rng: random.Random | None = None) -> None:
        self.params = params or HierarchyParams()
        rng = rng or random.Random(0)
        p = self.params
        self.l1i = Cache("L1I", p.l1i.size, p.l1i.ways,
                         replacement=p.replacement, rng=rng)
        self.l1d = Cache("L1D", p.l1d.size, p.l1d.ways,
                         replacement=p.replacement, rng=rng)
        self.l2 = Cache("L2", p.l2.size, p.l2.ways,
                        replacement=p.replacement, rng=rng)

    def _access(self, l1: Cache, pa: int) -> int:
        """Access through *l1* then L2; returns latency in cycles."""
        p = self.params
        hit1, _ = l1.access(pa)
        if hit1:
            # L1 hits still refresh L2 LRU state lazily? Real caches do
            # not; we match that: no L2 access on an L1 hit.
            return p.l1_latency
        hit2, evicted = self.l2.access(pa)
        if evicted is not None:
            self._back_invalidate(evicted)
        if hit2:
            return p.l2_latency
        return p.mem_latency

    def _back_invalidate(self, line: int) -> None:
        """Inclusive L2: a line leaving L2 leaves the L1s too."""
        self.l1i.invalidate(line)
        self.l1d.invalidate(line)

    def access_data(self, pa: int) -> int:
        """Data load/store at physical address *pa*; returns cycles."""
        return self._access(self.l1d, pa)

    def access_instr(self, pa: int) -> int:
        """Instruction fetch at physical address *pa*; returns cycles."""
        return self._access(self.l1i, pa)

    def prefetch_instr(self, pa: int) -> None:
        """Fill the instruction path without timing (I-prefetcher)."""
        if not self.l1i.lookup(pa):
            evicted = self.l2.fill(pa)
            if evicted is not None:
                self._back_invalidate(evicted)
            self.l1i.fill(pa)

    def flush_line(self, pa: int) -> None:
        """clflush semantics: remove the line from every level."""
        self.l1i.invalidate(pa)
        self.l1d.invalidate(pa)
        self.l2.invalidate(pa)

    def flush_all(self) -> None:
        self.l1i.flush_all()
        self.l1d.flush_all()
        self.l2.flush_all()

    def instr_cached(self, pa: int) -> bool:
        return self.l1i.lookup(pa) or self.l2.lookup(pa)

    def data_cached(self, pa: int) -> bool:
        return self.l1d.lookup(pa) or self.l2.lookup(pa)
