"""Memory system facade: page tables + TLBs + cache hierarchy + DRAM.

This is the single interface the pipeline uses for all memory traffic.
Every access translates through the :class:`AddressSpace` (permission
checks included) and charges cycles according to TLB and cache state.
"""

from __future__ import annotations

import random

from ..errors import MemoryError_
from ..fastpath import fastpath_enabled
from ..params import HUGE_PAGE_SIZE, PAGE_SIZE, canonical
from .cache import Cache
from .hierarchy import HierarchyParams, MemoryHierarchy
from .paging import AddressSpace, TranslationFront
from .phys import PhysicalMemory
from .tlb import TLB


class FrameAllocator:
    """Bump allocator over physical frames."""

    def __init__(self, phys: PhysicalMemory, start: int = PAGE_SIZE) -> None:
        self._phys = phys
        self._next = start

    def alloc(self, size: int, align: int = PAGE_SIZE) -> int:
        """Allocate *size* physically contiguous bytes; returns base PA."""
        base = (self._next + align - 1) & ~(align - 1)
        if base + size > self._phys.size:
            raise MemoryError_(
                f"out of physical memory ({base + size:#x} > "
                f"{self._phys.size:#x})")
        self._next = base + size
        return base

    def alloc_page(self) -> int:
        return self.alloc(PAGE_SIZE)

    def alloc_huge(self) -> int:
        return self.alloc(HUGE_PAGE_SIZE, align=HUGE_PAGE_SIZE)

    @property
    def used(self) -> int:
        return self._next


class MemorySystem:
    """Paging + caches + physical memory, with cycle accounting."""

    def __init__(self, phys_size: int,
                 hierarchy: HierarchyParams | None = None,
                 rng: random.Random | None = None,
                 fastpath: bool | None = None) -> None:
        rng = rng or random.Random(0)
        self.phys = PhysicalMemory(phys_size)
        self.frames = FrameAllocator(self.phys)
        self.aspace = AddressSpace()
        self.hier = MemoryHierarchy(hierarchy, rng=rng)
        self.itlb = TLB()
        self.dtlb = TLB()
        self.fastpath = fastpath_enabled() if fastpath is None else \
            bool(fastpath)
        self.xlat = TranslationFront(self.aspace)
        #: Translation entry point shared by the data/instruction paths
        #: and the CPU's transient machinery.  The memoized front and
        #: the raw page walk are interchangeable (same results, same
        #: PageFaults) — the binding just decides the cost of a hit.
        self.translate = self.xlat.translate if self.fastpath else \
            self.aspace.translate

    # -- data path -----------------------------------------------------------

    def read_data(self, va: int, size: int, *,
                  user_mode: bool = False) -> tuple[int, int]:
        """Load *size* bytes at *va*.  Returns ``(value, cycles)``."""
        pa = self.translate(va, user_mode=user_mode)
        cycles = self.dtlb.access(va) + self._touch_data(pa, size)
        return self.phys.read_int(pa, size), cycles

    def write_data(self, va: int, size: int, value: int, *,
                   user_mode: bool = False) -> int:
        """Store *value* at *va*.  Returns cycles."""
        pa = self.translate(va, write=True, user_mode=user_mode)
        cycles = self.dtlb.access(va) + self._touch_data(pa, size)
        self.phys.write_int(pa, size, value)
        return cycles

    def _touch_data(self, pa: int, size: int) -> int:
        cycles = 0
        line = pa & ~63
        while line < pa + size:
            cycles = max(cycles, self.hier.access_data(line))
            line += 64
        return cycles

    # -- instruction path ------------------------------------------------------

    def fetch_code(self, va: int, size: int, *,
                   user_mode: bool = False) -> tuple[bytes, int]:
        """Fetch *size* code bytes at *va* (exec permission enforced).

        Returns ``(bytes, cycles)``.  Fetches crossing a page boundary
        translate both pages.
        """
        cycles = 0
        out = bytearray()
        pos = va
        end = va + size
        while pos < end:
            pa = self.translate(pos, exec_=True, user_mode=user_mode)
            chunk = min(end - pos, PAGE_SIZE - (pos & (PAGE_SIZE - 1)))
            cycles += self.itlb.access(pos)
            line = pa & ~63
            while line < pa + chunk:
                cycles = max(cycles, self.hier.access_instr(line))
                line += 64
            out += self.phys.read(pa, chunk)
            pos += chunk
        return bytes(out), cycles

    # -- loading ---------------------------------------------------------------

    def load_image(self, image, *, user: bool = False, nx: bool = False,
                   writable: bool = True) -> None:
        """Allocate frames for *image*'s segments, map and copy them."""
        for segment in image.segments:
            base_va = segment.base & ~(PAGE_SIZE - 1)
            end_va = (segment.end + PAGE_SIZE - 1) & ~(PAGE_SIZE - 1)
            span = end_va - base_va
            pa = self.frames.alloc(span)
            self.aspace.map_range(base_va, pa, span, user=user, nx=nx,
                                  writable=writable)
            self.phys.write(pa + (segment.base - base_va), segment.data)

    def map_anonymous(self, va: int, size: int, **attrs) -> int:
        """Map zeroed memory at *va*; returns the physical base."""
        pa = self.frames.alloc(size)
        self.aspace.map_range(va, pa, size, **attrs)
        return pa

    # -- attacker-visible helpers ----------------------------------------------

    def clflush(self, va: int) -> None:
        """Flush the line holding *va* from all cache levels."""
        pa = self.aspace.translate_noperm(canonical(va))
        if pa is not None:
            self.hier.flush_line(pa)
