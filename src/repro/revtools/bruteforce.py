"""Brute-force search for BTB collision bit-flip patterns.

Reproduces the paper's first (failed) approach in section 6.2: flip up
to *max_bits* address bits of a kernel address K and test whether the
resulting user address still collides in the BTB.  The search space
grows combinatorially, which is exactly why the paper switched to the
SMT (here: GF(2)) approach.
"""

from __future__ import annotations

import itertools
from collections.abc import Callable, Iterator
from dataclasses import dataclass

CollisionOracle = Callable[[int, int], bool]
"""``oracle(addr_a, addr_b) -> True`` iff the two addresses collide."""


@dataclass
class BruteForceResult:
    """Outcome of a brute-force pattern search."""

    patterns: list[int]
    tested: int
    exhausted: bool


def iter_flip_masks(bit_range: tuple[int, int],
                    max_bits: int) -> Iterator[int]:
    """All XOR masks flipping 1..max_bits bits within [lo, hi]."""
    lo, hi = bit_range
    bits = range(lo, hi + 1)
    for k in range(1, max_bits + 1):
        for combo in itertools.combinations(bits, k):
            mask = 0
            for bit in combo:
                mask |= 1 << bit
            yield mask


def brute_force_patterns(oracle: CollisionOracle, kernel_addr: int, *,
                         bit_range: tuple[int, int] = (12, 46),
                         max_bits: int = 6,
                         base_mask: int = 1 << 47,
                         budget: int | None = None,
                         stop_after: int | None = None) -> BruteForceResult:
    """Search for flip masks p with ``oracle(K, K ^ p)``.

    ``base_mask`` bits are flipped in every candidate; the default flips
    bit 47 because the search goal is a *user-space* alias of a kernel
    address (the paper's setting).  ``max_bits`` counts the additional
    flips.  ``budget`` caps oracle queries; ``stop_after`` stops once
    that many patterns are found.

    This reproduces the paper's negative result: because bit 47
    participates in every Zen 3 cross-privilege function, flipping bit
    47 disturbs all 12 functions at once and repairing them needs more
    additional flips than a 6-bit search covers.
    """
    found: list[int] = []
    tested = 0
    for flips in iter_flip_masks(bit_range, max_bits):
        mask = base_mask | flips
        if budget is not None and tested >= budget:
            return BruteForceResult(found, tested, exhausted=False)
        tested += 1
        if oracle(kernel_addr, kernel_addr ^ mask):
            found.append(mask)
            if stop_after is not None and len(found) >= stop_after:
                return BruteForceResult(found, tested, exhausted=False)
    return BruteForceResult(found, tested, exhausted=True)
