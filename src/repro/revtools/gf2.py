"""Linear algebra over GF(2) with bit-vector rows.

The paper recovers BTB index/tag functions with an SMT solver (section
6.2).  Those functions are XOR-linear in the address bits, so the SMT
query reduces to exact linear algebra over GF(2): the wanted functions
are precisely the masks orthogonal to every observed collision
difference vector.  This module provides that machinery with plain
Python integers as bit vectors (bit *i* of a mask = coefficient of
address bit *i*).
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence


def parity(x: int) -> int:
    """Parity (XOR-fold) of the set bits of *x*."""
    return bin(x).count("1") & 1


def popcount(x: int) -> int:
    return bin(x).count("1")


def apply_mask(mask: int, value: int) -> int:
    """Evaluate the linear function *mask* at *value*: parity(mask & value)."""
    return parity(mask & value)


def row_reduce(rows: Iterable[int]) -> list[int]:
    """Gaussian elimination; returns a reduced row-echelon basis.

    Rows are integers; pivot positions are the highest set bits.  Zero
    rows are dropped, so ``len(result)`` is the rank.
    """
    basis: list[int] = []
    for row in rows:
        for b in basis:
            row = min(row, row ^ b)
        if row:
            basis.append(row)
            basis.sort(reverse=True)
    # Back-substitute so each pivot column appears in exactly one row.
    basis_sorted = sorted(basis, reverse=True)
    for i in range(len(basis_sorted)):
        pivot = 1 << (basis_sorted[i].bit_length() - 1)
        for j in range(len(basis_sorted)):
            if j != i and basis_sorted[j] & pivot:
                basis_sorted[j] ^= basis_sorted[i]
    return sorted((r for r in basis_sorted if r), reverse=True)


def rank(rows: Iterable[int]) -> int:
    return len(row_reduce(rows))


def in_span(vector: int, basis: Sequence[int]) -> bool:
    """True if *vector* is in the GF(2) span of *basis*."""
    for b in row_reduce(basis):
        if vector and b.bit_length() == vector.bit_length():
            vector ^= b
    return vector == 0


def orthogonal_complement(vectors: Iterable[int], width: int) -> list[int]:
    """Masks m (< 2**width) with parity(m & v) == 0 for every input vector.

    Returns a basis of the orthogonal complement of ``span(vectors)``
    inside GF(2)^width.
    """
    basis = row_reduce(vectors)
    # Solve the homogeneous system basis * m^T = 0 by Gaussian
    # elimination on the constraint matrix whose rows are the basis
    # vectors and whose unknowns are the `width` mask bits.
    pivots: dict[int, int] = {}  # column -> row index
    rows = list(basis)
    for i, row in enumerate(rows):
        pivot_col = row.bit_length() - 1
        pivots[pivot_col] = i
    free_cols = [c for c in range(width) if c not in pivots]
    complement: list[int] = []
    for free in free_cols:
        mask = 1 << free
        # Determine pivot-variable values forced by this free variable.
        # Process pivot columns from high to low so each row's pivot is
        # resolved after all higher terms are fixed.
        for col in sorted(pivots, reverse=False):
            row = rows[pivots[col]]
            # parity of the row restricted to currently set mask bits,
            # excluding the pivot column itself.
            forced = parity(row & mask & ~(1 << col))
            if forced:
                mask |= 1 << col
        complement.append(mask)
    # Sanity: every complement vector must annihilate every input basis row.
    for mask in complement:
        for row in basis:
            assert parity(mask & row) == 0, "complement construction bug"
    return complement


def span(basis: Sequence[int]) -> list[int]:
    """All 2**len(basis) elements of the span (len(basis) <= 24)."""
    if len(basis) > 24:
        raise ValueError("span too large to enumerate")
    out = [0]
    for b in basis:
        out += [x ^ b for x in out]
    return out


def minimal_weight_basis(basis: Sequence[int], *,
                         max_weight: int | None = None) -> list[int]:
    """Re-express *basis* using minimum-Hamming-weight span elements.

    This mirrors the paper's SMT constraint ``sum(x_i) <= n``: gradually
    admitting heavier functions until the space is fully covered, which
    yields the sparse per-bit XOR functions of Figure 7.  Returns a list
    of the same rank, sorted by (weight, value).
    """
    if not basis:
        return []
    candidates = sorted((v for v in span(basis) if v),
                        key=lambda v: (popcount(v), v))
    chosen: list[int] = []
    for cand in candidates:
        if max_weight is not None and popcount(cand) > max_weight:
            break
        if not in_span(cand, chosen):
            chosen.append(cand)
            if len(chosen) == len(row_reduce(basis)):
                break
    return sorted(chosen, key=lambda v: (popcount(v), v))


def mask_to_bits(mask: int) -> list[int]:
    """Bit positions participating in the linear function *mask*."""
    return [i for i in range(mask.bit_length()) if mask >> i & 1]


def format_function(mask: int, name: str = "f") -> str:
    """Render a mask the way Figure 7 does: ``b47 ^ b35 ^ b23``."""
    bits = sorted(mask_to_bits(mask), reverse=True)
    return " ^ ".join(f"b{b}" for b in bits)
