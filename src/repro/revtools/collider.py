"""Random-sampling collision analysis — the paper's SMT approach, §6.2.

For each kernel address K we collect user-space addresses that collide
with K in the BTB (random sampling with the low 12 bits pinned to
K's, as in the paper).  XOR-linear index/tag functions must be constant
across each collision class, so every observed difference vector
``A ^ K`` lies in the common kernel of those functions, and the
functions themselves are recovered as the orthogonal complement with a
minimal-coefficient-count basis (the paper's ``sum x_i <= n`` bound).
"""

from __future__ import annotations

import random
from collections.abc import Callable, Sequence
from dataclasses import dataclass, field

from . import gf2
from .bruteforce import CollisionOracle


@dataclass
class CollisionSurvey:
    """Colliding user addresses per kernel address."""

    kernel_addr: int
    colliding: list[int] = field(default_factory=list)
    samples: int = 0

    @property
    def difference_vectors(self) -> list[int]:
        return [a ^ self.kernel_addr for a in self.colliding]


def sample_collisions(oracle: CollisionOracle, kernel_addr: int, *,
                      samples: int, rng: random.Random,
                      va_bits: int = 48,
                      keep_low_bits: int = 12) -> CollisionSurvey:
    """Randomly sample user addresses and record which collide with K.

    The low *keep_low_bits* bits are pinned to the kernel address's
    (paper: "we set them equal to K0-11") and the top bit is cleared so
    the sample is a user address.
    """
    survey = CollisionSurvey(kernel_addr)
    low_mask = (1 << keep_low_bits) - 1
    low = kernel_addr & low_mask
    for _ in range(samples):
        candidate = rng.getrandbits(va_bits - 1)  # bit 47 clear: user space
        candidate = (candidate & ~low_mask) | low
        survey.samples += 1
        if oracle(kernel_addr, candidate):
            survey.colliding.append(candidate)
    return survey


@dataclass
class RecoveredFunctions:
    """Result of the function-recovery pipeline."""

    masks: list[int]                # minimal-weight XOR functions
    complement_rank: int            # dimension of the function space
    surveys: list[CollisionSurvey]

    def formatted(self) -> list[str]:
        return [f"f{i} = {gf2.format_function(m)}"
                for i, m in enumerate(self.masks)]

    def alias_mask(self, *, va_bits: int = 48,
                   keep_low_bits: int = 12) -> int:
        """A flip pattern crossing the privilege bit while preserving
        every recovered function.

        ``K ^ alias_mask`` is then a user address colliding with kernel
        address K — the role the paper's ``0xffffbff800000000`` plays.
        """
        return solve_alias_pattern(self.masks, va_bits=va_bits,
                                   keep_low_bits=keep_low_bits)


def recover_functions(oracle: CollisionOracle, kernel_addrs: Sequence[int], *,
                      samples_per_addr: int = 20000,
                      rng: random.Random | None = None,
                      va_bits: int = 48,
                      keep_low_bits: int = 12,
                      max_weight: int | None = 4) -> RecoveredFunctions:
    """Run the full §6.2 pipeline and return the recovered functions.

    ``max_weight`` mirrors the paper's coefficient bound n (they found
    Figure 7's functions at n=4).
    """
    rng = rng or random.Random(0x5EED)
    surveys = [
        sample_collisions(oracle, k, samples=samples_per_addr, rng=rng,
                          va_bits=va_bits, keep_low_bits=keep_low_bits)
        for k in kernel_addrs
    ]
    diffs = [v for s in surveys for v in s.difference_vectors]
    if not diffs:
        return RecoveredFunctions([], 0, surveys)
    # The pinned low bits are identically zero in every difference
    # vector, so the data says nothing about them (the paper has the
    # same blind spot).  Analyse bits [keep_low_bits, va_bits) only.
    shifted = [v >> keep_low_bits for v in diffs]
    width = va_bits - keep_low_bits
    complement = gf2.orthogonal_complement(shifted, width)
    masks = gf2.minimal_weight_basis(complement, max_weight=max_weight)
    masks = [m << keep_low_bits for m in masks]
    return RecoveredFunctions(masks, len(gf2.row_reduce(masks)), surveys)


def solve_alias_pattern(masks: Sequence[int], *, va_bits: int = 48,
                        keep_low_bits: int = 12) -> int:
    """Find a flip pattern p with bit va_bits-1 set, zero low bits, and
    ``parity(m & p) == 0`` for every function mask in *masks*.

    XORing a kernel address with p yields a colliding user address.
    Preference is given to the minimum-Hamming-weight pattern found
    among the kernel basis combinations (up to pairs), which is how the
    compact published masks arise.
    """
    width = va_bits - keep_low_bits
    shifted_masks = [m >> keep_low_bits for m in masks]
    kernel_basis = gf2.orthogonal_complement(shifted_masks, width)
    top_bit = va_bits - 1 - keep_low_bits
    with_top = [v for v in kernel_basis if v >> top_bit & 1]
    candidates: list[int] = list(with_top)
    if with_top:
        anchor = min(with_top, key=gf2.popcount)
        candidates += [anchor ^ v for v in kernel_basis
                       if v != anchor and not (v >> top_bit & 1)]
    if not candidates:
        raise ValueError("functions admit no privilege-crossing alias")
    best = min(candidates, key=gf2.popcount)
    return best << keep_low_bits
