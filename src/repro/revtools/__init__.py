"""Reverse-engineering toolkit: GF(2) solving, brute force, collision sampling."""

from . import gf2
from .bruteforce import BruteForceResult, brute_force_patterns, iter_flip_masks
from .collider import (CollisionSurvey, RecoveredFunctions, recover_functions,
                       sample_collisions, solve_alias_pattern)

__all__ = [
    "BruteForceResult",
    "CollisionSurvey",
    "RecoveredFunctions",
    "brute_force_patterns",
    "gf2",
    "iter_flip_masks",
    "recover_functions",
    "sample_collisions",
    "solve_alias_pattern",
]
