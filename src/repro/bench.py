"""Simulator throughput benchmarks: simulated instructions per second.

Unlike everything else in :mod:`repro`, this module measures *host*
performance — how fast the simulator itself retires simulated
instructions — for the two execution engines (the naive interpreter and
the fast path, see :mod:`repro.fastpath`).  Three workloads cover the
simulator's main cost regimes:

* ``straight_line`` — unrolled arithmetic with one predictable loop
  branch: the decode/execute steady state, no speculation machinery.
* ``branch_heavy``  — a xorshift-fed data-dependent branch per
  iteration: constant BTB training, mispredicts and backend Spectre
  windows, the regime the experiments actually live in.
* ``syscall``       — user/kernel round trips on a booted
  :class:`~repro.kernel.Machine`: privilege transitions, IBPB/fence
  mitigation work and kernel-text execution.
* ``idle_loop``     — short retire bursts separated by long quiescent
  stretches with scheduled wakeup events: the regime
  :meth:`~repro.pipeline.CPU.idle` optimises, where the fast engine
  jumps between event deadlines instead of ticking every cycle.

Results are written as a ``phantom.bench/1`` document; each workload
entry carries the fast engine's superblock statistics (blocks compiled,
mean fused length, invalidations, probe bails, cycles skipped) so a
perf regression can be localised to the layer that lost coverage.
Regression comparison is done on the fast/slow *speedup ratio*, not
absolute IPS: the ratio divides out host speed, so a baseline committed
from one machine remains meaningful on any other (CI runners included).
"""

from __future__ import annotations

import json
import os
import platform
import time
from dataclasses import dataclass

from .errors import HaltRequested
from .fastpath import ENV_VAR
from .isa import Assembler, Cond, Reg
from .memory import MemorySystem
from .params import PAGE_SIZE
from .pipeline import CPU, ZEN2

BENCH_SCHEMA = "phantom.bench/1"

#: Workload names in report order.
WORKLOADS = ("straight_line", "branch_heavy", "syscall", "idle_loop")

#: Iteration counts: (full, quick).  Sized so a full run finishes in a
#: couple of minutes on a laptop and ``--quick`` fits a CI smoke job.
_SIZES = {
    "straight_line": (10_000, 1_500),
    "branch_heavy": (20_000, 3_000),
    # Round trips are cheap but individually tiny; anything under a few
    # hundred milliseconds of wall time measures the OS scheduler, not
    # the simulator.
    "syscall": (2_000, 300),
    "idle_loop": (2_000, 300),
}

_CODE = 0x0000_0010_0000
_STACK = 0x0000_7FF0_0000


@dataclass
class WorkloadResult:
    """One workload measured under both engines."""

    name: str
    iterations: int
    instructions: int          # simulated instructions per engine run
    slow_seconds: float
    fast_seconds: float
    #: Fast-engine superblock/quiescence statistics (see
    #: :func:`superblock_stats`); None when the fast run predates them.
    superblocks: dict | None = None

    @property
    def slow_ips(self) -> float:
        return self.instructions / self.slow_seconds

    @property
    def fast_ips(self) -> float:
        return self.instructions / self.fast_seconds

    @property
    def speedup(self) -> float:
        return self.slow_seconds / self.fast_seconds

    def to_dict(self) -> dict:
        out = {
            "name": self.name,
            "iterations": self.iterations,
            "instructions": self.instructions,
            "slow_seconds": round(self.slow_seconds, 4),
            "fast_seconds": round(self.fast_seconds, 4),
            "slow_ips": round(self.slow_ips, 1),
            "fast_ips": round(self.fast_ips, 1),
            "speedup": round(self.speedup, 3),
        }
        if self.superblocks is not None:
            out["superblocks"] = self.superblocks
        return out


def superblock_stats(cpu: CPU) -> dict:
    """Snapshot the fast engine's fusion/quiescence counters."""
    compiled = cpu.sb_compiled
    return {
        "compiled": compiled,
        "fused_instructions": cpu.sb_fused_instructions,
        "mean_length": round(cpu.sb_fused_instructions / compiled, 2)
        if compiled else 0.0,
        "invalidated": cpu.sb_invalidated,
        "probe_bails": cpu.sb_probe_bails,
        "transient_compiled": cpu.tb_compiled,
        "cycles_skipped": cpu.cycles_skipped,
    }


# -- workload programs --------------------------------------------------------

def _straight_line(iters: int) -> Assembler:
    """Unrolled integer arithmetic; one predictable backward branch."""
    asm = Assembler(_CODE)
    asm.mov_ri(Reg.RAX, 1)
    asm.mov_ri(Reg.RBX, 3)
    asm.mov_ri(Reg.RCX, iters)
    asm.label("loop")
    for _ in range(16):
        asm.add_rr(Reg.RAX, Reg.RBX)
        asm.xor_rr(Reg.RBX, Reg.RAX)
        asm.add_ri(Reg.RAX, 7)
    asm.sub_ri(Reg.RCX, 1)
    asm.jcc(Cond.NE, "loop")
    asm.hlt()
    return asm


def _branch_heavy(iters: int) -> Assembler:
    """A data-dependent branch per iteration, fed by xorshift64.

    The branch resolves on pseudo-random state, so the conditional
    predictor mispredicts at a steady rate and every mispredict opens a
    backend Spectre window — the simulator's most expensive steady
    state, and the regime the paper's experiments exercise.
    """
    asm = Assembler(_CODE)
    asm.mov_ri(Reg.RAX, 0x9E3779B97F4A7C15)
    asm.mov_ri(Reg.RBX, 0)
    asm.mov_ri(Reg.RCX, iters)
    asm.label("loop")
    asm.mov_rr(Reg.RDX, Reg.RAX)
    asm.shl_ri(Reg.RDX, 13)
    asm.xor_rr(Reg.RAX, Reg.RDX)
    asm.mov_rr(Reg.RDX, Reg.RAX)
    asm.shr_ri(Reg.RDX, 7)
    asm.xor_rr(Reg.RAX, Reg.RDX)
    asm.mov_rr(Reg.RDX, Reg.RAX)
    asm.shl_ri(Reg.RDX, 17)
    asm.xor_rr(Reg.RAX, Reg.RDX)
    asm.mov_rr(Reg.RDX, Reg.RAX)
    asm.and_ri(Reg.RDX, 1)
    asm.cmp_ri(Reg.RDX, 0)
    asm.jcc(Cond.E, "skip")
    asm.add_ri(Reg.RBX, 1)
    asm.label("skip")
    asm.sub_ri(Reg.RCX, 1)
    asm.jcc(Cond.NE, "loop")
    asm.hlt()
    return asm


def _run_program(builder, iters: int,
                 fastpath: bool) -> tuple[int, float, dict]:
    """Run one user-mode program to HLT; return (instrs, wall, stats)."""
    mem = MemorySystem(256 << 20, fastpath=fastpath)
    cpu = CPU(ZEN2, mem, fastpath=fastpath)
    mem.map_anonymous(_STACK - 16 * PAGE_SIZE, 16 * PAGE_SIZE,
                      user=True, nx=True)
    cpu.state.write(Reg.RSP, _STACK)
    mem.load_image(builder(iters).image(), user=True)
    start = time.perf_counter()
    try:
        cpu.run(_CODE, max_instructions=1_000_000_000)
    except HaltRequested:
        pass
    wall = time.perf_counter() - start
    return cpu.pmc.read("instructions"), wall, superblock_stats(cpu)


def _run_syscalls(iters: int,
                  fastpath: bool) -> tuple[int, float, dict]:
    """getpid round trips on a booted machine; (instrs, wall, stats).

    The engine is selected through the environment toggle the escape
    hatch documents (a :class:`Machine` boots its own memory system),
    restored afterwards.
    """
    from .kernel import Machine
    from .pipeline import by_name

    saved = os.environ.get(ENV_VAR)
    os.environ[ENV_VAR] = "1" if fastpath else "0"
    try:
        machine = Machine(by_name("zen 2"), kaslr_seed=0)
    finally:
        if saved is None:
            os.environ.pop(ENV_VAR, None)
        else:
            os.environ[ENV_VAR] = saved
    machine.syscall(39)          # warm caches and predictors
    base = machine.cpu.pmc.read("instructions")
    start = time.perf_counter()
    for _ in range(iters):
        machine.syscall(39)
    wall = time.perf_counter() - start
    return (machine.cpu.pmc.read("instructions") - base, wall,
            superblock_stats(machine.cpu))


def _idle_burst(iters: int) -> Assembler:
    """A short retire burst: the active half of the idle workload."""
    asm = Assembler(_CODE)
    asm.mov_ri(Reg.RAX, iters)
    for _ in range(8):
        asm.add_ri(Reg.RAX, 5)
        asm.xor_rr(Reg.RBX, Reg.RAX)
    asm.hlt()
    return asm


def _run_idle_loop(iters: int,
                   fastpath: bool) -> tuple[int, float, dict]:
    """Retire bursts separated by event-punctuated quiescent stretches.

    Each iteration runs the burst program to HLT, arms two wakeup
    events and idles 2000 cycles through them — the shape of a device
    model waiting on timer deadlines.  The callbacks only append to a
    host-side list, so both engines observe identical event traffic;
    the fast engine's :meth:`CPU.idle` skips straight between the
    deadlines instead of ticking every cycle.
    """
    mem = MemorySystem(256 << 20, fastpath=fastpath)
    cpu = CPU(ZEN2, mem, fastpath=fastpath)
    mem.map_anonymous(_STACK - 16 * PAGE_SIZE, 16 * PAGE_SIZE,
                      user=True, nx=True)
    cpu.state.write(Reg.RSP, _STACK)
    mem.load_image(_idle_burst(iters).image(), user=True)
    fired: list[int] = []
    start = time.perf_counter()
    for _ in range(iters):
        try:
            cpu.run(_CODE, max_instructions=1_000_000)
        except HaltRequested:
            pass
        cpu.sched.schedule(cpu.cycles, 500, fired.append)
        cpu.sched.schedule(cpu.cycles, 1300, fired.append)
        cpu.idle(2000)
    wall = time.perf_counter() - start
    if len(fired) != 2 * iters:
        raise AssertionError(
            f"idle_loop: {len(fired)} events fired, expected {2 * iters}")
    return cpu.pmc.read("instructions"), wall, superblock_stats(cpu)


#: Repetitions per engine measurement; the best (minimum) wall wins.
#: Simulated work is deterministic, so the fastest repeat is the one
#: least disturbed by the host — the ratio of two minima is far more
#: stable than the ratio of two single samples on a shared machine.
_REPEATS = 3


def _best_of(run, *args) -> tuple[int, float, dict]:
    best = None
    for _ in range(_REPEATS):
        sample = run(*args)
        if best is None or sample[1] < best[1]:
            best = sample
    return best


def measure(name: str, *, quick: bool = False) -> WorkloadResult:
    """Measure one workload under both engines (best of ``_REPEATS``)."""
    full, small = _SIZES[name]
    iters = small if quick else full
    if name == "syscall":
        slow_instrs, slow_wall, _ = _best_of(_run_syscalls, iters, False)
        fast_instrs, fast_wall, stats = _best_of(_run_syscalls, iters, True)
    elif name == "idle_loop":
        slow_instrs, slow_wall, _ = _best_of(_run_idle_loop, iters, False)
        fast_instrs, fast_wall, stats = _best_of(_run_idle_loop, iters, True)
    else:
        builder = _straight_line if name == "straight_line" \
            else _branch_heavy
        slow_instrs, slow_wall, _ = _best_of(_run_program, builder,
                                             iters, False)
        fast_instrs, fast_wall, stats = _best_of(_run_program, builder,
                                                 iters, True)
    if slow_instrs != fast_instrs:
        raise AssertionError(
            f"{name}: engines retired different instruction counts "
            f"({slow_instrs} slow vs {fast_instrs} fast) — the fast "
            f"path diverged architecturally")
    return WorkloadResult(name=name, iterations=iters,
                          instructions=slow_instrs,
                          slow_seconds=slow_wall, fast_seconds=fast_wall,
                          superblocks=stats)


def run_bench(*, quick: bool = False,
              workloads=WORKLOADS) -> list[WorkloadResult]:
    return [measure(name, quick=quick) for name in workloads]


# -- document / comparison ----------------------------------------------------

def document(results: list[WorkloadResult], *, quick: bool = False) -> dict:
    """Build the ``phantom.bench/1`` document for *results*."""
    return {
        "schema": BENCH_SCHEMA,
        "created": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "quick": quick,
        "host": {
            "python": platform.python_version(),
            "implementation": platform.python_implementation(),
            "machine": platform.machine(),
        },
        "workloads": [r.to_dict() for r in results],
    }


def compare(doc: dict, baseline: dict, *,
            tolerance: float = 0.3) -> list[str]:
    """Regressions of *doc* against *baseline*; empty when clean.

    Compares the fast/slow speedup per workload — absolute IPS depends
    on the host, the ratio does not — and flags any workload whose
    ratio fell more than *tolerance* below the baseline's.
    """
    if baseline.get("schema") != BENCH_SCHEMA:
        raise ValueError(
            f"baseline is not a {BENCH_SCHEMA} document "
            f"(schema={baseline.get('schema')!r})")
    base = {w["name"]: w for w in baseline.get("workloads", [])}
    problems = []
    for entry in doc["workloads"]:
        ref = base.get(entry["name"])
        if ref is None:
            continue
        floor = ref["speedup"] * (1.0 - tolerance)
        if entry["speedup"] < floor:
            problems.append(
                f"{entry['name']}: speedup {entry['speedup']:.2f}x fell "
                f"below {floor:.2f}x (baseline {ref['speedup']:.2f}x "
                f"- {tolerance:.0%} tolerance)")
    return problems


def format_table(results: list[WorkloadResult]) -> str:
    lines = [f"{'workload':16s} {'instrs':>10s} {'slow ips':>10s} "
             f"{'fast ips':>10s} {'speedup':>8s}"]
    for r in results:
        lines.append(f"{r.name:16s} {r.instructions:10,d} "
                     f"{r.slow_ips:10,.0f} {r.fast_ips:10,.0f} "
                     f"{r.speedup:7.2f}x")
    return "\n".join(lines)


def load_document(path: str) -> dict:
    with open(path, "r", encoding="utf-8") as fh:
        return json.load(fh)


def is_bench_document(doc: dict) -> bool:
    return isinstance(doc, dict) and doc.get("schema") == BENCH_SCHEMA


#: Superblock stat keys in report order (subset shown by summaries).
_SB_KEYS = ("compiled", "fused_instructions", "mean_length",
            "invalidated", "probe_bails", "transient_compiled",
            "cycles_skipped")


def summarize_bench(doc: dict) -> str:
    """Human-readable summary of one ``phantom.bench/1`` document."""
    host = doc.get("host", {})
    lines = [
        f"bench document ({'quick' if doc.get('quick') else 'full'}) "
        f"created {doc.get('created', '?')}",
        f"host: {host.get('implementation', '?')} "
        f"{host.get('python', '?')} on {host.get('machine', '?')}",
        "",
    ]
    for entry in doc.get("workloads", []):
        lines.append(
            f"{entry['name']:16s} {entry['instructions']:10,d} instrs  "
            f"{entry['slow_ips']:10,.0f} slow ips  "
            f"{entry['fast_ips']:10,.0f} fast ips  "
            f"{entry['speedup']:6.2f}x")
        stats = entry.get("superblocks")
        if stats:
            detail = "  ".join(f"{key}={stats[key]}" for key in _SB_KEYS
                               if key in stats)
            lines.append(f"{'':16s} superblocks: {detail}")
    return "\n".join(lines)


def diff_bench(a: dict, b: dict) -> str:
    """Workload-by-workload comparison of two bench documents."""
    left = {w["name"]: w for w in a.get("workloads", [])}
    right = {w["name"]: w for w in b.get("workloads", [])}
    lines = [f"{'workload':16s} {'speedup A':>10s} {'speedup B':>10s} "
             f"{'delta':>8s}"]
    for name in dict.fromkeys([*left, *right]):
        wa, wb = left.get(name), right.get(name)
        if wa is None or wb is None:
            lines.append(f"{name:16s} only in "
                         f"{'B' if wa is None else 'A'}")
            continue
        delta = wb["speedup"] - wa["speedup"]
        lines.append(f"{name:16s} {wa['speedup']:9.2f}x {wb['speedup']:9.2f}x "
                     f"{delta:+7.2f}x")
        sa, sb = wa.get("superblocks") or {}, wb.get("superblocks") or {}
        changed = [key for key in _SB_KEYS
                   if key in sa and key in sb and sa[key] != sb[key]]
        if changed:
            detail = "  ".join(f"{key} {sa[key]} -> {sb[key]}"
                               for key in changed)
            lines.append(f"{'':16s} superblocks: {detail}")
    return "\n".join(lines)
