"""Simulator throughput benchmarks: simulated instructions per second.

Unlike everything else in :mod:`repro`, this module measures *host*
performance — how fast the simulator itself retires simulated
instructions — for the two execution engines (the naive interpreter and
the fast path, see :mod:`repro.fastpath`).  Three workloads cover the
simulator's main cost regimes:

* ``straight_line`` — unrolled arithmetic with one predictable loop
  branch: the decode/execute steady state, no speculation machinery.
* ``branch_heavy``  — a xorshift-fed data-dependent branch per
  iteration: constant BTB training, mispredicts and backend Spectre
  windows, the regime the experiments actually live in.
* ``syscall``       — user/kernel round trips on a booted
  :class:`~repro.kernel.Machine`: privilege transitions, IBPB/fence
  mitigation work and kernel-text execution.

Results are written as a ``phantom.bench/1`` document.  Regression
comparison is done on the fast/slow *speedup ratio*, not absolute IPS:
the ratio divides out host speed, so a baseline committed from one
machine remains meaningful on any other (CI runners included).
"""

from __future__ import annotations

import json
import os
import platform
import time
from dataclasses import dataclass

from .errors import HaltRequested
from .fastpath import ENV_VAR
from .isa import Assembler, Cond, Reg
from .memory import MemorySystem
from .params import PAGE_SIZE
from .pipeline import CPU, ZEN2

BENCH_SCHEMA = "phantom.bench/1"

#: Workload names in report order.
WORKLOADS = ("straight_line", "branch_heavy", "syscall")

#: Iteration counts: (full, quick).  Sized so a full run finishes in a
#: couple of minutes on a laptop and ``--quick`` fits a CI smoke job.
_SIZES = {
    "straight_line": (10_000, 1_500),
    "branch_heavy": (20_000, 3_000),
    "syscall": (400, 60),
}

_CODE = 0x0000_0010_0000
_STACK = 0x0000_7FF0_0000


@dataclass
class WorkloadResult:
    """One workload measured under both engines."""

    name: str
    iterations: int
    instructions: int          # simulated instructions per engine run
    slow_seconds: float
    fast_seconds: float

    @property
    def slow_ips(self) -> float:
        return self.instructions / self.slow_seconds

    @property
    def fast_ips(self) -> float:
        return self.instructions / self.fast_seconds

    @property
    def speedup(self) -> float:
        return self.slow_seconds / self.fast_seconds

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "iterations": self.iterations,
            "instructions": self.instructions,
            "slow_seconds": round(self.slow_seconds, 4),
            "fast_seconds": round(self.fast_seconds, 4),
            "slow_ips": round(self.slow_ips, 1),
            "fast_ips": round(self.fast_ips, 1),
            "speedup": round(self.speedup, 3),
        }


# -- workload programs --------------------------------------------------------

def _straight_line(iters: int) -> Assembler:
    """Unrolled integer arithmetic; one predictable backward branch."""
    asm = Assembler(_CODE)
    asm.mov_ri(Reg.RAX, 1)
    asm.mov_ri(Reg.RBX, 3)
    asm.mov_ri(Reg.RCX, iters)
    asm.label("loop")
    for _ in range(16):
        asm.add_rr(Reg.RAX, Reg.RBX)
        asm.xor_rr(Reg.RBX, Reg.RAX)
        asm.add_ri(Reg.RAX, 7)
    asm.sub_ri(Reg.RCX, 1)
    asm.jcc(Cond.NE, "loop")
    asm.hlt()
    return asm


def _branch_heavy(iters: int) -> Assembler:
    """A data-dependent branch per iteration, fed by xorshift64.

    The branch resolves on pseudo-random state, so the conditional
    predictor mispredicts at a steady rate and every mispredict opens a
    backend Spectre window — the simulator's most expensive steady
    state, and the regime the paper's experiments exercise.
    """
    asm = Assembler(_CODE)
    asm.mov_ri(Reg.RAX, 0x9E3779B97F4A7C15)
    asm.mov_ri(Reg.RBX, 0)
    asm.mov_ri(Reg.RCX, iters)
    asm.label("loop")
    asm.mov_rr(Reg.RDX, Reg.RAX)
    asm.shl_ri(Reg.RDX, 13)
    asm.xor_rr(Reg.RAX, Reg.RDX)
    asm.mov_rr(Reg.RDX, Reg.RAX)
    asm.shr_ri(Reg.RDX, 7)
    asm.xor_rr(Reg.RAX, Reg.RDX)
    asm.mov_rr(Reg.RDX, Reg.RAX)
    asm.shl_ri(Reg.RDX, 17)
    asm.xor_rr(Reg.RAX, Reg.RDX)
    asm.mov_rr(Reg.RDX, Reg.RAX)
    asm.and_ri(Reg.RDX, 1)
    asm.cmp_ri(Reg.RDX, 0)
    asm.jcc(Cond.E, "skip")
    asm.add_ri(Reg.RBX, 1)
    asm.label("skip")
    asm.sub_ri(Reg.RCX, 1)
    asm.jcc(Cond.NE, "loop")
    asm.hlt()
    return asm


def _run_program(builder, iters: int, fastpath: bool) -> tuple[int, float]:
    """Run one user-mode program to HLT; return (instructions, wall)."""
    mem = MemorySystem(256 << 20, fastpath=fastpath)
    cpu = CPU(ZEN2, mem, fastpath=fastpath)
    mem.map_anonymous(_STACK - 16 * PAGE_SIZE, 16 * PAGE_SIZE,
                      user=True, nx=True)
    cpu.state.write(Reg.RSP, _STACK)
    mem.load_image(builder(iters).image(), user=True)
    start = time.perf_counter()
    try:
        cpu.run(_CODE, max_instructions=1_000_000_000)
    except HaltRequested:
        pass
    wall = time.perf_counter() - start
    return cpu.pmc.read("instructions"), wall


def _run_syscalls(iters: int, fastpath: bool) -> tuple[int, float]:
    """getpid round trips on a booted machine; returns (instrs, wall).

    The engine is selected through the environment toggle the escape
    hatch documents (a :class:`Machine` boots its own memory system),
    restored afterwards.
    """
    from .kernel import Machine
    from .pipeline import by_name

    saved = os.environ.get(ENV_VAR)
    os.environ[ENV_VAR] = "1" if fastpath else "0"
    try:
        machine = Machine(by_name("zen 2"), kaslr_seed=0)
    finally:
        if saved is None:
            os.environ.pop(ENV_VAR, None)
        else:
            os.environ[ENV_VAR] = saved
    machine.syscall(39)          # warm caches and predictors
    base = machine.cpu.pmc.read("instructions")
    start = time.perf_counter()
    for _ in range(iters):
        machine.syscall(39)
    wall = time.perf_counter() - start
    return machine.cpu.pmc.read("instructions") - base, wall


def measure(name: str, *, quick: bool = False) -> WorkloadResult:
    """Measure one workload under both engines."""
    full, small = _SIZES[name]
    iters = small if quick else full
    if name == "syscall":
        slow_instrs, slow_wall = _run_syscalls(iters, fastpath=False)
        fast_instrs, fast_wall = _run_syscalls(iters, fastpath=True)
    else:
        builder = _straight_line if name == "straight_line" \
            else _branch_heavy
        slow_instrs, slow_wall = _run_program(builder, iters, fastpath=False)
        fast_instrs, fast_wall = _run_program(builder, iters, fastpath=True)
    if slow_instrs != fast_instrs:
        raise AssertionError(
            f"{name}: engines retired different instruction counts "
            f"({slow_instrs} slow vs {fast_instrs} fast) — the fast "
            f"path diverged architecturally")
    return WorkloadResult(name=name, iterations=iters,
                          instructions=slow_instrs,
                          slow_seconds=slow_wall, fast_seconds=fast_wall)


def run_bench(*, quick: bool = False,
              workloads=WORKLOADS) -> list[WorkloadResult]:
    return [measure(name, quick=quick) for name in workloads]


# -- document / comparison ----------------------------------------------------

def document(results: list[WorkloadResult], *, quick: bool = False) -> dict:
    """Build the ``phantom.bench/1`` document for *results*."""
    return {
        "schema": BENCH_SCHEMA,
        "created": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "quick": quick,
        "host": {
            "python": platform.python_version(),
            "implementation": platform.python_implementation(),
            "machine": platform.machine(),
        },
        "workloads": [r.to_dict() for r in results],
    }


def compare(doc: dict, baseline: dict, *,
            tolerance: float = 0.3) -> list[str]:
    """Regressions of *doc* against *baseline*; empty when clean.

    Compares the fast/slow speedup per workload — absolute IPS depends
    on the host, the ratio does not — and flags any workload whose
    ratio fell more than *tolerance* below the baseline's.
    """
    if baseline.get("schema") != BENCH_SCHEMA:
        raise ValueError(
            f"baseline is not a {BENCH_SCHEMA} document "
            f"(schema={baseline.get('schema')!r})")
    base = {w["name"]: w for w in baseline.get("workloads", [])}
    problems = []
    for entry in doc["workloads"]:
        ref = base.get(entry["name"])
        if ref is None:
            continue
        floor = ref["speedup"] * (1.0 - tolerance)
        if entry["speedup"] < floor:
            problems.append(
                f"{entry['name']}: speedup {entry['speedup']:.2f}x fell "
                f"below {floor:.2f}x (baseline {ref['speedup']:.2f}x "
                f"- {tolerance:.0%} tolerance)")
    return problems


def format_table(results: list[WorkloadResult]) -> str:
    lines = [f"{'workload':16s} {'instrs':>10s} {'slow ips':>10s} "
             f"{'fast ips':>10s} {'speedup':>8s}"]
    for r in results:
        lines.append(f"{r.name:16s} {r.instructions:10,d} "
                     f"{r.slow_ips:10,.0f} {r.fast_ips:10,.0f} "
                     f"{r.speedup:7.2f}x")
    return "\n".join(lines)


def load_document(path: str) -> dict:
    with open(path, "r", encoding="utf-8") as fh:
        return json.load(fh)
