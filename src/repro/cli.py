"""Command-line interface: ``python -m repro <command>``.

Every command drives the public API; nothing here adds behaviour.

Commands
--------

* ``matrix``    — Table 1's speculation matrix (choose µarchs)
* ``kaslr``     — §7.1 kernel-image derandomization
* ``physmap``   — §7.2 physmap derandomization (Zen 1/2)
* ``leak``      — the full §7 chain ending in a kernel-memory leak
* ``covert``    — §6.4 covert-channel capacity
* ``rev-btb``   — §6.2 BTB function recovery (Figure 7)
* ``gadgets``   — §9.3 gadget census over a synthetic corpus
* ``trace``     — run a syscall under the execution tracer
* ``uarches``   — list the modelled microarchitectures
"""

from __future__ import annotations

import argparse
import random
import sys

from .pipeline import ALL_MICROARCHES, AMD_MICROARCHES, by_name


def _add_uarch(parser, default="zen 2", choices_amd_only=False):
    parser.add_argument("--uarch", default=default,
                        help="microarchitecture name (e.g. 'zen 3')")
    parser.add_argument("--seed", type=int, default=0,
                        help="KASLR/RNG seed (a 'reboot')")


def cmd_uarches(args) -> int:
    print(f"{'name':26s} {'model':24s} {'vendor':7s} {'clock':>6s} "
          f"{'phantom window':>15s}")
    for uarch in ALL_MICROARCHES:
        window = f"{uarch.phantom_exec_uops} uops" \
            if uarch.phantom_reaches_execute else "fetch+decode"
        print(f"{uarch.name:26s} {uarch.model:24s} {uarch.vendor:7s} "
              f"{uarch.clock_ghz:5.1f}G {window:>15s}")
    return 0


def cmd_matrix(args) -> int:
    from .core.matrix import format_matrix, run_matrix

    if args.uarch == "all":
        uarches = ALL_MICROARCHES
    elif args.uarch == "amd":
        uarches = AMD_MICROARCHES
    else:
        uarches = (by_name(args.uarch),)
    print(format_matrix(run_matrix(uarches)))
    return 0


def cmd_kaslr(args) -> int:
    from .core import break_kernel_image_kaslr
    from .kernel import Machine

    machine = Machine(by_name(args.uarch), kaslr_seed=args.seed)
    result = break_kernel_image_kaslr(machine)
    ok = result.correct(machine.kaslr)
    print(f"guessed image base: {result.guessed_base:#x}")
    print(f"actual image base:  {machine.kaslr.image_base:#x}")
    print(f"{'SUCCESS' if ok else 'FAILURE'} in "
          f"{result.seconds * 1000:.2f} simulated ms")
    return 0 if ok else 1


def cmd_physmap(args) -> int:
    from .core import break_kernel_image_kaslr, break_physmap_kaslr
    from .kernel import Machine

    machine = Machine(by_name(args.uarch), kaslr_seed=args.seed)
    image = break_kernel_image_kaslr(machine)
    result = break_physmap_kaslr(machine, image.guessed_base)
    ok = result.correct(machine.kaslr)
    print(f"guessed physmap: "
          f"{result.guessed_base and hex(result.guessed_base)}")
    print(f"actual physmap:  {machine.kaslr.physmap_base:#x}")
    print(f"{'SUCCESS' if ok else 'FAILURE'} after "
          f"{result.candidates_scanned} candidates, "
          f"{result.seconds * 1000:.2f} simulated ms")
    return 0 if ok else 1


def cmd_leak(args) -> int:
    from .core import (break_kernel_image_kaslr, break_physmap_kaslr,
                       find_physical_address, leak_kernel_memory)
    from .kernel import Machine

    machine = Machine(by_name(args.uarch), kaslr_seed=args.seed,
                      phys_mem=1 << 30)
    image = break_kernel_image_kaslr(machine)
    physmap = break_physmap_kaslr(machine, image.guessed_base)
    buffer_va = 0x0000_0000_7A00_0000
    machine.map_user_huge(buffer_va)
    find_physical_address(machine, image.guessed_base,
                          physmap.guessed_base, buffer_va)
    result = leak_kernel_memory(machine, image.guessed_base,
                                physmap.guessed_base,
                                n_bytes=args.bytes)
    print(f"leaked {len(result.leaked)} bytes, accuracy "
          f"{result.accuracy * 100:.1f}%, "
          f"{result.bytes_per_second:,.0f} B/s simulated")
    print(f"first 32 bytes: {result.leaked[:32].hex()}")
    return 0 if result.accuracy == 1.0 else 1


def cmd_covert(args) -> int:
    from .core import execute_covert_channel, fetch_covert_channel
    from .kernel import Machine

    machine = Machine(by_name(args.uarch), kaslr_seed=args.seed,
                      sibling_load=True)
    result = fetch_covert_channel(machine, n_bits=args.bits)
    print(f"fetch channel:   accuracy {result.accuracy * 100:6.2f}%  "
          f"{result.bits_per_second:,.0f} bits/s simulated")
    if machine.uarch.phantom_reaches_execute:
        machine = Machine(by_name(args.uarch), kaslr_seed=args.seed)
        result = execute_covert_channel(machine, n_bits=args.bits)
        print(f"execute channel: accuracy {result.accuracy * 100:6.2f}%  "
              f"{result.bits_per_second:,.0f} bits/s simulated")
    return 0


def cmd_rev_btb(args) -> int:
    from .frontend import BTB
    from .isa import BranchKind
    from .revtools import recover_functions, solve_alias_pattern

    uarch = by_name(args.uarch)

    def oracle(a: int, b: int) -> bool:
        btb = BTB(uarch.btb)
        btb.train(a, BranchKind.INDIRECT, 0x4000, kernel_mode=False)
        return btb.lookup(b, kernel_mode=False) is not None

    kernel_addr = 0xFFFF_FFFF_8123_4AC0 & ((1 << 48) - 1)
    recovered = recover_functions(
        oracle, [kernel_addr, kernel_addr ^ 0x40_0000],
        samples_per_addr=args.samples, rng=random.Random(args.seed))
    for line in recovered.formatted():
        print(line)
    alias = solve_alias_pattern(recovered.masks)
    print(f"alias pattern: K ^ {alias:#018x}")
    return 0


def cmd_gadgets(args) -> int:
    from .analysis import generate_corpus, scan_corpus

    corpus = generate_corpus(total=args.functions, seed=args.seed)
    summary = scan_corpus(corpus.image, corpus.entries)
    print(f"functions scanned:        {args.functions}")
    print(f"conventional v1 gadgets:  {summary.spectre_v1}")
    print(f"single-load MDS gadgets:  {summary.mds_single_load}")
    print(f"Phantom-exploitable:      {summary.phantom_exploitable} "
          f"({summary.amplification:.2f}x)")
    return 0


def cmd_trace(args) -> int:
    from .analysis import Tracer
    from .kernel import Machine

    machine = Machine(by_name(args.uarch), kaslr_seed=args.seed)
    with Tracer(machine, limit=args.limit) as trace:
        machine.syscall(args.nr, args.rdi, args.rsi)
    print(trace.render())
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Phantom (MICRO'23) reproduction on a simulated "
                    "microarchitecture")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("uarches", help="list modelled CPUs") \
        .set_defaults(fn=cmd_uarches)

    p = sub.add_parser("matrix", help="Table 1 speculation matrix")
    p.add_argument("--uarch", default="amd",
                   help="'all', 'amd', or one name")
    p.set_defaults(fn=cmd_matrix)

    p = sub.add_parser("kaslr", help="break kernel-image KASLR (§7.1)")
    _add_uarch(p, default="zen 3")
    p.set_defaults(fn=cmd_kaslr)

    p = sub.add_parser("physmap", help="break physmap KASLR (§7.2)")
    _add_uarch(p, default="zen 2")
    p.set_defaults(fn=cmd_physmap)

    p = sub.add_parser("leak", help="full §7 chain: leak kernel memory")
    _add_uarch(p, default="zen 2")
    p.add_argument("--bytes", type=int, default=128)
    p.set_defaults(fn=cmd_leak)

    p = sub.add_parser("covert", help="covert-channel capacity (§6.4)")
    _add_uarch(p, default="zen 4")
    p.add_argument("--bits", type=int, default=1024)
    p.set_defaults(fn=cmd_covert)

    p = sub.add_parser("rev-btb", help="recover BTB functions (§6.2)")
    _add_uarch(p, default="zen 3")
    p.add_argument("--samples", type=int, default=200_000)
    p.set_defaults(fn=cmd_rev_btb)

    p = sub.add_parser("gadgets", help="gadget census (§9.3)")
    p.add_argument("--functions", type=int, default=400)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(fn=cmd_gadgets)

    p = sub.add_parser("trace", help="trace a syscall's speculation")
    _add_uarch(p, default="zen 2")
    p.add_argument("--nr", type=int, default=39, help="syscall number")
    p.add_argument("--rdi", type=int, default=0)
    p.add_argument("--rsi", type=int, default=0)
    p.add_argument("--limit", type=int, default=200)
    p.set_defaults(fn=cmd_trace)

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":   # pragma: no cover
    sys.exit(main())
