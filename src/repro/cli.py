"""Command-line interface: ``python -m repro <command>``.

Every command drives the public API; nothing here adds behaviour.

Commands
--------

* ``matrix``    — Table 1's speculation matrix (choose µarchs)
* ``kaslr``     — §7.1 kernel-image derandomization
* ``physmap``   — §7.2 physmap derandomization (Zen 1/2)
* ``leak``      — the full §7 chain ending in a kernel-memory leak
* ``covert``    — §6.4 covert-channel capacity
* ``rev-btb``   — §6.2 BTB function recovery (Figure 7)
* ``gadgets``   — §9.3 gadget census over a synthetic corpus
* ``trace``     — run a syscall under the execution tracer; the
  ``summarize`` / ``export`` subcommands inspect a ``--spans`` capture
  (critical path, Perfetto JSON, OpenMetrics)
* ``fuzz``      — differential fuzz the dual-engine simulator
* ``serve``     — the campaign service: HTTP submissions, per-tenant
  quotas, content-addressed result memoization (``--selftest`` replays
  a load fleet against a private instance; see ``docs/service.md``)
* ``submit``    — send one campaign to a running ``repro serve``
* ``chaos``     — fault-injection smoke: recover, resume, diff clean
* ``stats``     — summarize one run manifest, or diff two
* ``bench``     — simulator throughput: fast path vs naive interpreter
* ``uarches``   — list the modelled microarchitectures

Every experiment command accepts ``--json`` (print a
``phantom.run-manifest/1`` document instead of text), ``--trace-out
FILE`` (stream a ``phantom.trace/1`` JSON-lines event trace), and
``--results-dir DIR`` (archive the manifest).  Campaign commands
(``matrix``, ``kaslr``, ``physmap``, ``leak``, ``covert``, ``fuzz``)
also take ``--jobs N`` to shard their jobs across worker processes
(0 = one per available CPU; results are identical at any worker
count), and — with ``--results-dir`` — journal every finished job to
``DIR/<command>-checkpoint.jsonl``; ``--resume CHECKPOINT`` skips the
jobs already journaled there (see ``docs/resilience.md``).  Ctrl-C
with a checkpoint active exits 130 after flushing the journal and
printing the resume command.

Observability (see ``docs/observability.md``): ``--spans DIR`` records
``phantom.span/1`` distributed-trace spans across every worker and
stitches them into ``DIR/trace.jsonl``; ``--progress FILE`` streams
``phantom.progress/1`` job-completion events (plus a live progress bar
whenever stderr is a terminal).
"""

from __future__ import annotations

import argparse
import os
import random
import sys
from pathlib import Path

from .pipeline import ALL_MICROARCHES, AMD_MICROARCHES, by_name
from .runner import CampaignOptions
from .telemetry import (JsonLinesSink, ProgressReporter, REGISTRY,
                        RunManifest, SPANS, TRACE, diff_manifests,
                        stitch_to_file, summarize_manifest)


def _add_uarch(parser, default="zen 2", choices_amd_only=False):
    parser.add_argument("--uarch", default=default,
                        help="microarchitecture name (e.g. 'zen 3')")
    parser.add_argument("--seed", type=int, default=0,
                        help="KASLR/RNG seed (a 'reboot')")


def _add_telemetry(parser):
    parser.add_argument("--json", action="store_true",
                        help="print the run manifest as JSON "
                             "(suppresses normal text output)")
    parser.add_argument("--trace-out", metavar="FILE", default=None,
                        help="write a phantom.trace/1 JSON-lines event "
                             "trace to FILE")
    parser.add_argument("--results-dir", metavar="DIR", default=None,
                        help="archive the run manifest under DIR")
    parser.add_argument("--spans", metavar="DIR", default=None,
                        help="record phantom.span/1 distributed-trace "
                             "spans under DIR and stitch them into "
                             "DIR/trace.jsonl (inspect with "
                             "'repro trace summarize/export')")
    parser.add_argument("--progress", metavar="FILE", default=None,
                        help="stream phantom.progress/1 job-completion "
                             "events to FILE ('-' = stdout, a number = "
                             "an inherited fd); a single-line progress "
                             "bar additionally renders whenever stderr "
                             "is a terminal")


def _progress_reporter(args) -> "ProgressReporter | None":
    """The reporter implied by ``--progress`` and/or a TTY, or ``None``.

    Returns ``None`` when there is nowhere to report to, so headless
    runs construct nothing and stay byte-identical to pre-progress
    behaviour.
    """
    stream = None
    target = getattr(args, "progress", None)
    if target == "-":
        stream = sys.stdout
    elif target and target.isdigit():
        stream = os.fdopen(int(target), "w", encoding="utf-8")
    elif target:
        stream = open(target, "w", encoding="utf-8")
    tty = sys.stderr if sys.stderr.isatty() else None
    if stream is None and tty is None:
        return None
    return ProgressReporter(stream=stream, tty=tty)


def _fuzz_shapes():
    from .fuzz import SHAPES
    return SHAPES


def _fuzz_contracts():
    from .fuzz import contract_names
    return contract_names()


def _mitigation_names():
    from .kernel import mitigation_names
    return mitigation_names()


class _Run:
    """Telemetry harness shared by every experiment command.

    Enables the process metrics registry for the duration of the run,
    attaches the ``--trace-out`` sink, opens the ``--spans`` root span
    and the ``--progress`` reporter, builds the run manifest, and
    routes text output (suppressed when ``--json`` asks for the
    manifest document only).
    """

    def __init__(self, args, command: str, machine=None,
                 **extra_config) -> None:
        self.args = args
        self.command = command
        self.machine = machine
        self.extra_config = extra_config
        self.options = CampaignOptions.from_args(args)
        self.json_only = bool(getattr(args, "json", False))
        self._sink = None
        self._absorbed: list[dict] = []
        self.manifest: RunManifest | None = None
        self.progress: ProgressReporter | None = None
        self._progress_stream = None
        self._owns_spans = False

    def __enter__(self) -> "_Run":
        REGISTRY.reset()
        if self.machine is not None:
            REGISTRY.set_base_labels(uarch=self.machine.uarch.name)
        REGISTRY.enable()
        trace_out = getattr(self.args, "trace_out", None)
        if trace_out:
            self._sink = JsonLinesSink(trace_out)
            TRACE.add_sink(self._sink)
        spans_dir = getattr(self.args, "spans", None)
        if spans_dir:
            SPANS.start(spans_dir, name=self.command)
            self._owns_spans = True
        self.progress = _progress_reporter(self.args)
        if self.progress is not None:
            self._progress_stream = self.progress.stream
        self.manifest = RunManifest.begin(self.command,
                                          machine=self.machine,
                                          **self.extra_config)
        return self

    def phase(self, name: str):
        return self.manifest.phase(name, machine=self.machine)

    def campaign_kwargs(self, command: str | None = None) -> dict:
        """This run's :class:`~repro.runner.CampaignOptions`, rendered
        into ``run_campaign`` keywords (checkpoint journal under
        ``--results-dir``, resume source, the live progress reporter).
        Multi-campaign commands pass one dict to every campaign — spec
        fingerprints keep their journal records apart."""
        return self.options.campaign_kwargs(command or self.command,
                                            progress=self.progress)

    def text(self, line: str = "") -> None:
        if not self.json_only:
            print(line)

    def absorb(self, campaign) -> None:
        """Fold a :class:`repro.runner.CampaignResult`'s merged manifest
        into this run's manifest at finish time.  The jobs' metrics
        live in the absorbed document, so the process registry is reset
        to keep the final snapshot from counting the last job twice.
        It is then re-enabled: an in-process (--jobs 1) campaign leaves
        the registry disabled after its last job, and any post-campaign
        work (violation replay, shrinking) must be metered identically
        at every worker count."""
        self._absorbed.append(campaign.manifest)
        REGISTRY.reset()
        REGISTRY.enable()

    def finish(self, status: str, **outcome) -> None:
        self.manifest.finish(status, machine=self.machine, **outcome)
        while self._absorbed:
            self.manifest.absorb(self._absorbed.pop(0))

    def __exit__(self, exc_type, exc, tb) -> bool:
        try:
            if exc_type is None:
                if self.manifest.outcome.get("status") == "unknown":
                    self.finish("success")
                if self.json_only:
                    print(self.manifest.to_json())
                results_dir = getattr(self.args, "results_dir", None)
                if results_dir:
                    path = self.manifest.write(results_dir)
                    self.text(f"manifest: {path}")
        finally:
            if self._sink is not None:
                TRACE.remove_sink(self._sink)
                self._sink.close()
                self._sink = None
            if self.progress is not None:
                self.progress.close()
                if self._progress_stream not in (None, sys.stdout):
                    try:
                        self._progress_stream.close()
                    except OSError:
                        pass
                self.progress = None
            if self._owns_spans:
                span_dir = SPANS.finish(
                    status="ok" if exc_type is None else "error")
                self._owns_spans = False
                if span_dir is not None:
                    self.text(f"spans: {stitch_to_file(span_dir)}")
            REGISTRY.disable()
        return False


def cmd_uarches(args) -> int:
    print(f"{'name':26s} {'model':24s} {'vendor':7s} {'clock':>6s} "
          f"{'phantom window':>15s}")
    for uarch in ALL_MICROARCHES:
        window = f"{uarch.phantom_exec_uops} uops" \
            if uarch.phantom_reaches_execute else "fetch+decode"
        print(f"{uarch.name:26s} {uarch.model:24s} {uarch.vendor:7s} "
              f"{uarch.clock_ghz:5.1f}G {window:>15s}")
    return 0


def cmd_matrix(args) -> int:
    from .core.matrix import MatrixExperiment, format_matrix
    from .runner import run_campaign

    if args.uarch == "all":
        uarches = ALL_MICROARCHES
    elif args.uarch == "amd":
        uarches = AMD_MICROARCHES
    else:
        uarches = (by_name(args.uarch),)
    with _Run(args, "matrix", uarch=args.uarch,
              uarches=[u.name for u in uarches]) as run:
        with run.phase("matrix"):
            campaign = run_campaign(
                MatrixExperiment(uarches=tuple(u.name for u in uarches)),
                jobs=args.jobs, **run.campaign_kwargs())
        run.absorb(campaign)
        results = campaign.raise_on_failure().value
        reach: dict[str, int] = {}
        for cell in results:
            reach[cell.reach.name] = reach.get(cell.reach.name, 0) + 1
        run.finish("success", cells=len(results), reach=reach,
                   jobs=campaign.jobs)
        run.text(format_matrix(results))
    return 0


def cmd_kaslr(args) -> int:
    from .core import KaslrImageExperiment
    from .kernel import Kaslr, MachineSpec
    from .runner import run_campaign

    spec = MachineSpec(uarch=args.uarch, kaslr_seed=args.seed)
    with _Run(args, "kaslr", **spec.describe()) as run:
        with run.phase("break-image-kaslr"):
            campaign = run_campaign(KaslrImageExperiment(machine=spec),
                                    jobs=args.jobs,
                                    **run.campaign_kwargs())
        run.absorb(campaign)
        result = campaign.raise_on_failure().value
        kaslr = Kaslr.randomize(args.seed)
        ok = result.correct(kaslr)
        run.finish("success" if ok else "failure", **result.to_dict(),
                   actual_base=f"{kaslr.image_base:#x}",
                   jobs=campaign.jobs)
        run.text(f"guessed image base: {result.guessed_base:#x}")
        run.text(f"actual image base:  {kaslr.image_base:#x}")
        run.text(f"{'SUCCESS' if ok else 'FAILURE'} in "
                 f"{result.seconds * 1000:.2f} simulated ms")
    return 0 if ok else 1


def cmd_physmap(args) -> int:
    from .core import KaslrImageExperiment, PhysmapExperiment
    from .kernel import Kaslr, MachineSpec
    from .runner import run_campaign

    spec = MachineSpec(uarch=args.uarch, kaslr_seed=args.seed)
    with _Run(args, "physmap", **spec.describe()) as run:
        resilience = run.campaign_kwargs()
        with run.phase("break-image-kaslr"):
            image_campaign = run_campaign(
                KaslrImageExperiment(machine=spec), jobs=args.jobs,
                **resilience)
        run.absorb(image_campaign)
        image = image_campaign.raise_on_failure().value
        with run.phase("break-physmap-kaslr"):
            campaign = run_campaign(
                PhysmapExperiment(machine=spec,
                                  image_base=image.guessed_base),
                jobs=args.jobs, **resilience)
        run.absorb(campaign)
        result = campaign.raise_on_failure().value
        kaslr = Kaslr.randomize(args.seed)
        ok = result.correct(kaslr)
        run.finish("success" if ok else "failure", **result.to_dict(),
                   actual_physmap=f"{kaslr.physmap_base:#x}",
                   jobs=campaign.jobs)
        run.text(f"guessed physmap: "
                 f"{result.guessed_base and hex(result.guessed_base)}")
        run.text(f"actual physmap:  {kaslr.physmap_base:#x}")
        run.text(f"{'SUCCESS' if ok else 'FAILURE'} after "
                 f"{result.candidates_scanned} candidates, "
                 f"{result.seconds * 1000:.2f} simulated ms")
    return 0 if ok else 1


def cmd_leak(args) -> int:
    from .core import (KaslrImageExperiment, MdsLeakExperiment,
                       PhysAddrExperiment, PhysmapExperiment)
    from .kernel import MachineSpec
    from .runner import run_campaign

    spec = MachineSpec(uarch=args.uarch, kaslr_seed=args.seed,
                       phys_mem=1 << 30)
    with _Run(args, "leak", n_bytes=args.bytes, **spec.describe()) as run:
        resilience = run.campaign_kwargs()
        with run.phase("break-image-kaslr"):
            image_campaign = run_campaign(
                KaslrImageExperiment(machine=spec), jobs=args.jobs,
                **resilience)
        run.absorb(image_campaign)
        image = image_campaign.raise_on_failure().value
        with run.phase("break-physmap-kaslr"):
            physmap_campaign = run_campaign(
                PhysmapExperiment(machine=spec,
                                  image_base=image.guessed_base),
                jobs=args.jobs, **resilience)
        run.absorb(physmap_campaign)
        physmap = physmap_campaign.raise_on_failure().value
        with run.phase("find-physical-address"):
            buffer_va = 0x0000_0000_7A00_0000
            physaddr_campaign = run_campaign(
                PhysAddrExperiment(machine=spec,
                                   image_base=image.guessed_base,
                                   physmap_base=physmap.guessed_base,
                                   buffer_va=buffer_va),
                jobs=args.jobs, **resilience)
        run.absorb(physaddr_campaign)
        physaddr_campaign.raise_on_failure()
        with run.phase("leak-kernel-memory"):
            campaign = run_campaign(
                MdsLeakExperiment(machine=spec,
                                  image_base=image.guessed_base,
                                  physmap_base=physmap.guessed_base,
                                  n_bytes=args.bytes),
                jobs=args.jobs, **resilience)
        run.absorb(campaign)
        result = campaign.raise_on_failure().value
        ok = result.accuracy == 1.0
        run.finish("success" if ok else "failure", **result.to_dict(),
                   first_32_bytes=result.leaked[:32].hex(),
                   jobs=campaign.jobs)
        run.text(f"leaked {len(result.leaked)} bytes, accuracy "
                 f"{result.accuracy * 100:.1f}%, "
                 f"{result.bytes_per_second:,.0f} B/s simulated")
        run.text(f"first 32 bytes: {result.leaked[:32].hex()}")
    return 0 if ok else 1


def cmd_covert(args) -> int:
    from .core import CovertExperiment
    from .kernel import MachineSpec
    from .runner import run_campaign

    spec = MachineSpec(uarch=args.uarch, kaslr_seed=args.seed,
                       sibling_load=True)
    with _Run(args, "covert", n_bits=args.bits, **spec.describe()) as run:
        resilience = run.campaign_kwargs()
        outcome = {"jobs": None}
        with run.phase("fetch-channel"):
            campaign = run_campaign(
                CovertExperiment(machine=spec, channel="fetch",
                                 n_bits=args.bits, seed=1),
                jobs=args.jobs, **resilience)
        run.absorb(campaign)
        outcome["jobs"] = campaign.jobs
        result = campaign.raise_on_failure().value
        outcome["fetch_accuracy"] = result.accuracy
        outcome["fetch_bits_per_second"] = result.bits_per_second
        run.text(f"fetch channel:   accuracy {result.accuracy * 100:6.2f}%  "
                 f"{result.bits_per_second:,.0f} bits/s simulated")
        if by_name(args.uarch).phantom_reaches_execute:
            with run.phase("execute-channel"):
                campaign = run_campaign(
                    CovertExperiment(machine=spec.with_(sibling_load=False),
                                     channel="execute",
                                     n_bits=args.bits, seed=2),
                    jobs=args.jobs, **resilience)
            run.absorb(campaign)
            result = campaign.raise_on_failure().value
            outcome["execute_accuracy"] = result.accuracy
            outcome["execute_bits_per_second"] = result.bits_per_second
            run.text(f"execute channel: accuracy "
                     f"{result.accuracy * 100:6.2f}%  "
                     f"{result.bits_per_second:,.0f} bits/s simulated")
        run.finish("success", **outcome)
    return 0


def cmd_rev_btb(args) -> int:
    from .frontend import BTB
    from .isa import BranchKind
    from .revtools import recover_functions, solve_alias_pattern

    uarch = by_name(args.uarch)

    def oracle(a: int, b: int) -> bool:
        btb = BTB(uarch.btb)
        btb.train(a, BranchKind.INDIRECT, 0x4000, kernel_mode=False)
        return btb.lookup(b, kernel_mode=False) is not None

    with _Run(args, "rev-btb", uarch=uarch.name,
              samples=args.samples, seed=args.seed) as run:
        with run.phase("recover-functions"):
            kernel_addr = 0xFFFF_FFFF_8123_4AC0 & ((1 << 48) - 1)
            recovered = recover_functions(
                oracle, [kernel_addr, kernel_addr ^ 0x40_0000],
                samples_per_addr=args.samples,
                rng=random.Random(args.seed))
        with run.phase("solve-alias-pattern"):
            alias = solve_alias_pattern(recovered.masks)
        run.finish("success", alias_pattern=f"{alias:#018x}",
                   masks=len(recovered.masks))
        for line in recovered.formatted():
            run.text(line)
        run.text(f"alias pattern: K ^ {alias:#018x}")
    return 0


def cmd_gadgets(args) -> int:
    from .analysis import generate_corpus, scan_corpus

    with _Run(args, "gadgets", functions=args.functions,
              seed=args.seed) as run:
        with run.phase("generate-corpus"):
            corpus = generate_corpus(total=args.functions, seed=args.seed)
        with run.phase("scan-corpus"):
            summary = scan_corpus(corpus.image, corpus.entries)
        run.finish("success", spectre_v1=summary.spectre_v1,
                   mds_single_load=summary.mds_single_load,
                   phantom_exploitable=summary.phantom_exploitable,
                   amplification=summary.amplification)
        run.text(f"functions scanned:        {args.functions}")
        run.text(f"conventional v1 gadgets:  {summary.spectre_v1}")
        run.text(f"single-load MDS gadgets:  {summary.mds_single_load}")
        run.text(f"Phantom-exploitable:      {summary.phantom_exploitable} "
                 f"({summary.amplification:.2f}x)")
    return 0


def cmd_trace(args) -> int:
    from .analysis import Tracer
    from .kernel import Machine

    machine = Machine(by_name(args.uarch), kaslr_seed=args.seed)
    with _Run(args, "trace", machine, syscall_nr=args.nr,
              limit=args.limit) as run:
        with run.phase("trace-syscall"):
            with Tracer(machine, limit=args.limit) as trace:
                machine.syscall(args.nr, args.rdi, args.rsi)
        run.finish("success",
                   instructions=len(trace.entries),
                   episodes=trace.episode_count(),
                   truncated=trace.truncated,
                   dropped_instructions=trace.dropped_instructions,
                   orphan_episodes=len(trace.orphan_episodes))
        run.text(trace.render())
    return 0


def cmd_trace_summarize(args) -> int:
    from .telemetry import read_spans, stitch, summarize_trace

    records = read_spans(args.spans)
    if not records:
        print(f"trace: no phantom.span/1 records under {args.spans}",
              file=sys.stderr)
        return 2
    print("\n".join(summarize_trace(stitch(records))))
    return 0


def cmd_trace_export(args) -> int:
    import json

    from .telemetry import read_spans, to_chrome_trace, to_openmetrics

    if args.format == "perfetto":
        records = read_spans(args.source)
        if not records:
            print(f"trace: no phantom.span/1 records under {args.source}",
                  file=sys.stderr)
            return 2
        text = json.dumps(to_chrome_trace(records), indent=2) + "\n"
    else:
        try:
            doc = RunManifest.load(args.source)
        except (OSError, json.JSONDecodeError) as exc:
            print(f"trace: cannot read manifest {args.source}: {exc}",
                  file=sys.stderr)
            return 2
        text = to_openmetrics(doc.get("metrics", {}),
                              pmc=doc.get("pmc") or None)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            fh.write(text)
        print(f"wrote {args.out}")
    else:
        sys.stdout.write(text)
    return 0


def cmd_fuzz(args) -> int:
    import time

    from .fuzz import (DEFAULT_UARCHES, FuzzExperiment, check_program,
                       generate, program_seed, save_counterexample, shrink)
    from .runner import run_campaign

    if args.contract:
        return _cmd_fuzz_contract(args)
    if args.mitigation:
        print("fuzz: --mitigation requires --contract", file=sys.stderr)
        return 2

    uarches = tuple(args.uarch) if args.uarch else DEFAULT_UARCHES
    invariants = not args.no_invariants
    with _Run(args, "fuzz", seed=args.seed, iters=args.iters,
              uarches=list(uarches), shape=args.shape,
              invariants=invariants) as run:
        started = time.monotonic()
        failures = []     # (index, program, verdict)
        checked = 0
        if args.jobs == 1 and not args.resume:
            with run.phase("fuzz"):
                for index in range(args.iters):
                    if args.time_budget and \
                            time.monotonic() - started >= args.time_budget:
                        run.text(f"time budget hit after {checked} programs")
                        break
                    program = generate(program_seed(args.seed, index),
                                       args.shape)
                    verdict = check_program(program, uarches,
                                            invariants=invariants)
                    checked += 1
                    if not verdict.ok:
                        failures.append((index, program, verdict))
        else:
            # The campaign decomposition ignores the time budget: jobs
            # are sharded up front so results match --jobs 1 exactly.
            # Long campaigns checkpoint through --results-dir and pick
            # up where they left off with --resume (which forces this
            # path even at --jobs 1).
            with run.phase("fuzz"):
                campaign = run_campaign(
                    FuzzExperiment(seed=args.seed, count=args.iters,
                                   shape=args.shape, uarches=uarches,
                                   invariants=invariants),
                    jobs=args.jobs, **run.campaign_kwargs())
            run.absorb(campaign)
            outcome = campaign.raise_on_failure().value
            checked = outcome["programs"]
            for index in outcome["failed_indices"]:
                program = generate(program_seed(args.seed, index),
                                   args.shape)
                failures.append((index, program,
                                 check_program(program, uarches,
                                               invariants=invariants)))

        artifacts = []
        for index, program, verdict in failures:
            run.text(f"DIVERGENCE at index {index}: {program.name}")
            for divergence in verdict.divergences[:8]:
                run.text(f"  {divergence}")
            shrink_checks = 0
            if not args.no_shrink:
                result = shrink(program, verdict, uarches=uarches,
                                invariants=invariants)
                run.text(f"  shrunk {result.items_before} -> "
                         f"{result.items_after} items "
                         f"({result.checks} oracle checks)")
                program, shrink_checks = result.program, result.checks
            path = save_counterexample(
                program, [str(d) for d in verdict.divergences],
                args.artifact_dir, shrink_checks=shrink_checks)
            artifacts.append(str(path))
            run.text(f"  wrote {path}")

        elapsed = time.monotonic() - started
        run.finish("success" if not failures else "failure",
                   programs=checked, divergent=len(failures),
                   failed_indices=[index for index, _, _ in failures],
                   artifacts=artifacts, elapsed_seconds=round(elapsed, 3))
        run.text(f"checked {checked}/{args.iters} programs on "
                 f"{', '.join(uarches)}: {len(failures)} divergence(s) "
                 f"in {elapsed:.1f}s")
    return 1 if failures else 0


def _cmd_fuzz_contract(args) -> int:
    """Relational mode of ``repro fuzz``: generated pairs against one
    leakage contract; violations shrink and ship as
    ``phantom.contract-violation/1`` artifacts."""
    import time

    from .fuzz import (ContractExperiment, DEFAULT_UARCHES, check_pair,
                       contract_by_name, generate_pair, pair_seed,
                       save_violation, shrink_pair)
    from .kernel import mitigation_by_name
    from .runner import run_campaign

    uarches = tuple(args.uarch) if args.uarch else DEFAULT_UARCHES
    contract = contract_by_name(args.contract)
    override = mitigation_by_name(args.mitigation) if args.mitigation \
        else None
    effective = override if override is not None \
        else contract.resolve_mitigation()
    with _Run(args, "fuzz", seed=args.seed, iters=args.iters,
              uarches=list(uarches), shape=args.shape,
              contract=contract.name, mitigation=effective.name) as run:
        started = time.monotonic()
        violations = []   # (index, pair, verdict)
        checked = 0
        # Only a --time-budget needs the inline loop (the campaign
        # runner cannot stop mid-chunk); otherwise even --jobs 1 goes
        # through run_campaign so the manifest is byte-identical at
        # any worker count.
        if args.jobs == 1 and not args.resume and args.time_budget:
            with run.phase("contract-fuzz"):
                for index in range(args.iters):
                    if time.monotonic() - started >= args.time_budget:
                        run.text(f"time budget hit after {checked} pairs")
                        break
                    pair = generate_pair(pair_seed(args.seed, index),
                                         args.shape)
                    verdict = check_pair(pair, contract, uarches,
                                         mitigation=override)
                    checked += 1
                    if not verdict.ok:
                        violations.append((index, pair, verdict))
        else:
            # Sharded exactly like the engine-differential campaign:
            # fixed chunks, --jobs-independent manifests.
            with run.phase("contract-fuzz"):
                campaign = run_campaign(
                    ContractExperiment(seed=args.seed, count=args.iters,
                                       contract=contract.name,
                                       shape=args.shape, uarches=uarches,
                                       mitigation=args.mitigation),
                    jobs=args.jobs, **run.campaign_kwargs())
            run.absorb(campaign)
            outcome = campaign.raise_on_failure().value
            checked = outcome["pairs"]
            for index in outcome["violated_indices"]:
                pair = generate_pair(pair_seed(args.seed, index),
                                     args.shape)
                violations.append((index, pair,
                                   check_pair(pair, contract, uarches,
                                              mitigation=override)))

        artifacts = []
        for index, pair, verdict in violations:
            run.text(f"CONTRACT VIOLATION at index {index}: {pair.name} "
                     f"[{contract.name} / {effective.name}]")
            for divergence in verdict.divergences[:8]:
                run.text(f"  {divergence}")
            shrink_checks = 0
            if not args.no_shrink:
                result = shrink_pair(pair, verdict, uarches=uarches,
                                     mitigation=override)
                run.text(f"  shrunk {result.items_before} -> "
                         f"{result.items_after} items "
                         f"({result.checks} pair checks)")
                pair, shrink_checks = result.pair, result.checks
                # Re-verdict the shrunk pair so the shipped artifact's
                # divergences describe the program it actually contains.
                verdict = check_pair(pair, contract, uarches,
                                     mitigation=override)
            path = save_violation(pair, verdict, args.artifact_dir,
                                  shrink_checks=shrink_checks)
            artifacts.append(str(path))
            run.text(f"  wrote {path}")

        elapsed = time.monotonic() - started
        run.finish("success" if not violations else "failure",
                   pairs=checked, violations=len(violations),
                   violated_indices=[index for index, _, _ in violations],
                   artifacts=artifacts, elapsed_seconds=round(elapsed, 3))
        run.text(f"checked {checked}/{args.iters} pairs against "
                 f"'{contract.name}' (mitigation {effective.name}) on "
                 f"{', '.join(uarches)}: {len(violations)} violation(s) "
                 f"in {elapsed:.1f}s")
    return 1 if violations else 0


def cmd_contracts(args) -> int:
    """List the leakage-contract and mitigation registries."""
    from .fuzz import CONTRACTS
    from .kernel import MITIGATIONS

    print(f"{'contract':18s} {'mitigation':14s} protected channels")
    for contract in CONTRACTS:
        print(f"{contract.name:18s} {contract.mitigation:14s} "
              f"{', '.join(contract.protects)}")
    print()
    print(f"{'mitigation':14s} {'mechanism':36s} config toggles")
    for mitigation in MITIGATIONS:
        toggles = ", ".join(mitigation.toggles) or "(baseline)"
        print(f"{mitigation.name:14s} {mitigation.mechanism:36s} {toggles}")
    return 0


def cmd_chaos(args) -> int:
    """Fault-injection smoke test: inject every chaos fault kind into a
    small matrix campaign, interrupt it mid-flight, resume it, and
    require the resumed manifest to fingerprint-equal a clean
    ``--jobs 1`` run.  Exit 0 means every recovery path held.

    ``--service`` runs the service-level variant instead: SIGKILL a
    real ``repro serve --state-dir`` subprocess mid-campaign, restart
    it on the same state dir, and require the recovered campaign to be
    fingerprint-identical with zero duplicate job executions."""
    import shutil
    import tempfile

    if args.service:
        return _chaos_service(args)

    from .core.matrix import ASYMMETRIC_COMBOS, MatrixExperiment
    from .resilience import (ChaosExperiment, ChaosInterruptor,
                             CheckpointWriter, SupervisionPolicy, plan_chaos)
    from .runner import (CampaignInterrupted, manifest_fingerprint,
                         run_campaign)

    uarch = by_name(args.uarch)
    combos = tuple(ASYMMETRIC_COMBOS[:args.cells]) if args.cells \
        else ASYMMETRIC_COMBOS
    experiment = MatrixExperiment(uarches=(uarch.name,), combos=combos,
                                  seed=args.seed)
    total = len(experiment.job_specs())

    scratch = None
    if args.state_dir:
        state_dir = Path(args.state_dir)
        state_dir.mkdir(parents=True, exist_ok=True)
    else:
        scratch = tempfile.mkdtemp(prefix="repro-chaos-")
        state_dir = Path(scratch)
    checkpoint = state_dir / "checkpoint.jsonl"

    plan = plan_chaos(experiment, seed=args.seed, state_dir=state_dir,
                      hang_s=args.hang)
    print(f"chaos plan (seed {args.seed}, {total} jobs, "
          f"--jobs {args.jobs}):")
    for target, kind in plan.faults:
        print(f"  {kind:7s} -> {target}")

    progress = _progress_reporter(args)
    progress_stream = progress.stream if progress is not None else None
    if getattr(args, "spans", None):
        SPANS.start(args.spans, name="chaos")
    try:
        # The reference nobody argues with: same campaign, serial,
        # no faults, no checkpoint.
        reference = run_campaign(experiment, jobs=1,
                                 timeout_s=args.timeout).raise_on_failure()
        want = manifest_fingerprint(reference.manifest)

        policy = SupervisionPolicy(watchdog_grace_s=args.watchdog,
                                   backoff_base_s=0.01,
                                   jitter_seed=args.seed)
        chaotic = ChaosExperiment(experiment, plan)
        interrupt = ChaosInterruptor(plan, after_jobs=max(1, total // 3))
        writer = CheckpointWriter(checkpoint,
                                  fault_hook=plan.checkpoint_hook())
        try:
            with writer:
                campaign = run_campaign(chaotic, jobs=args.jobs,
                                        timeout_s=args.timeout,
                                        retries=args.retries,
                                        checkpoint=writer,
                                        supervision=policy,
                                        on_job_done=interrupt,
                                        progress=progress)
            print(f"campaign ran to completion ({total}/{total} jobs) "
                  f"without the planned interrupt")
        except CampaignInterrupted as exc:
            print(str(exc))
            campaign = run_campaign(chaotic, jobs=args.jobs,
                                    timeout_s=args.timeout,
                                    retries=args.retries,
                                    checkpoint=checkpoint,
                                    resume=checkpoint,
                                    supervision=policy,
                                    progress=progress)
            resumed = campaign.manifest["outcome"].get("resume", {})
            print(f"resumed: {resumed.get('jobs_skipped', 0)} jobs "
                  f"skipped, {resumed.get('jobs_rerun', 0)} re-run")
        campaign.raise_on_failure()

        fired = set(plan.fired_tokens())
        planned = {f"{target}:{kind}" for target, kind in plan.faults}
        missing = sorted(planned - fired)
        match = manifest_fingerprint(campaign.manifest) == want
        line = f"faults fired: {len(planned - set(missing))}/{len(planned)}"
        if missing:
            line += f" (never fired: {', '.join(missing)})"
        print(line)
        print("resumed manifest "
              + ("fingerprint-equals" if match else "DIFFERS from")
              + " the clean --jobs 1 run")
        ok = match and not missing
        print(f"chaos smoke: {'OK' if ok else 'FAILED'}")
        if not ok and args.state_dir:
            print("hint: the state dir remembers fired faults; rerun "
                  "with a fresh --state-dir", file=sys.stderr)
        return 0 if ok else 1
    finally:
        if progress is not None:
            progress.close()
            if progress_stream not in (None, sys.stdout):
                try:
                    progress_stream.close()
                except OSError:
                    pass
        if getattr(args, "spans", None) and SPANS.enabled:
            span_dir = SPANS.finish()
            if span_dir is not None:
                print(f"spans: {stitch_to_file(span_dir)}")
        if scratch is not None:
            shutil.rmtree(scratch, ignore_errors=True)


def _chaos_service(args) -> int:
    """``repro chaos --service``: the crash-durability gate."""
    import json
    import shutil
    import tempfile

    from .resilience import ServiceChaosError, run_service_chaos

    scratch = None
    if args.state_dir:
        state_dir = Path(args.state_dir)
    else:
        scratch = tempfile.mkdtemp(prefix="repro-service-chaos-")
        state_dir = Path(scratch)
    # With --json only the verdict document goes to stdout (so
    # `--json > report.json` stays parseable, like serve --selftest);
    # the narration moves to stderr.
    json_mode = bool(getattr(args, "json", False))
    human = sys.stderr if json_mode else sys.stdout

    def say(*parts, **kw) -> None:
        print(*parts, file=human, **kw)

    try:
        try:
            report = run_service_chaos(
                state_dir, seed=args.seed,
                cells=args.cells or 8, jobs=args.jobs,
                timeout_s=max(args.timeout * 30, 120.0), echo=say)
        except ServiceChaosError as exc:
            print(f"service chaos: harness failure: {exc}",
                  file=sys.stderr)
            return 1
        doc = report.to_dict()
        say(f"recovered {doc['campaign_id']}: "
            f"{doc['memo'].get('hits', 0)} jobs answered from the "
            f"store, {doc['memo'].get('stored', 0)} executed fresh "
            f"({doc['entries_at_kill']} survived the kill)")
        say("recovered manifest "
            + ("fingerprint-equals" if doc["fingerprint_match"]
               else "DIFFERS from") + " the clean --jobs 1 run")
        say("idempotent resubmit "
            + ("returned the original campaign"
               if doc["idempotent_match"] else "DUPLICATED the work"))
        if doc["duplicate_executions"]:
            print(f"{doc['duplicate_executions']} job(s) executed "
                  f"twice", file=sys.stderr)
        if json_mode:
            print(json.dumps(doc, indent=2, sort_keys=True))
        say(f"service chaos: {'OK' if doc['ok'] else 'FAILED'}")
        return 0 if doc["ok"] else 1
    finally:
        if scratch is not None:
            shutil.rmtree(scratch, ignore_errors=True)


def cmd_serve(args) -> int:
    """Run the campaign service (see ``docs/service.md``).

    ``--selftest`` boots a private service instead, replays a fleet of
    overlapping campaigns against it and reports the dedup/quota
    verdict — the CI ``service-smoke`` gate in one flag.
    """
    import asyncio
    import json

    from .service import (ReplayPlan, ServiceConfig, TenantPolicy,
                          run_loadtest, serve)

    policy = TenantPolicy(rate_per_s=args.rate, burst=args.burst,
                          max_jobs_per_campaign=args.max_jobs_per_campaign,
                          max_active_campaigns=args.max_active_campaigns)
    if args.selftest:
        plan = ReplayPlan(distinct=args.selftest_distinct,
                          replays=args.selftest_replays)
        report = run_loadtest(args.store_dir, plan, jobs=args.jobs)
        doc = report.to_dict()
        if args.json:
            print(json.dumps(doc, indent=2, sort_keys=True))
        else:
            print(f"cold:   {doc['cold']['campaigns']} campaigns, "
                  f"{doc['cold']['jobs']} jobs "
                  f"({doc['cold']['hits']} already deduped)")
            print(f"replay: {doc['replay']['campaigns']} campaigns, "
                  f"{doc['replay']['jobs']} jobs, hit rate "
                  f"{doc['replay']['hit_rate'] * 100:.1f}% "
                  f"({doc['replay']['mismatched_fingerprints']} "
                  f"fingerprint mismatches)")
            print(f"storm:  {doc['storm']['rate_limited']} rate-limited, "
                  f"{doc['storm']['quota_rejected']} quota-rejected, "
                  f"{doc['storm']['untyped']} untyped failures")
            print(f"store:  {doc['store']['entries']} entries after "
                  f"{doc['wall_time_s']}s")
            print(f"selftest: {'OK' if doc['ok'] else 'FAILED'}")
        return 0 if doc["ok"] else 1

    config = ServiceConfig(host=args.host, port=args.port,
                           store_dir=args.store_dir, jobs=args.jobs,
                           store_max_entries=args.store_max_entries,
                           max_queue=args.max_queue, policy=policy,
                           state_dir=args.state_dir)

    def _on_ready(host, port, service):
        if args.port_file:
            # Atomic: a poller must never read a torn port number.
            port_path = Path(args.port_file)
            port_path.parent.mkdir(parents=True, exist_ok=True)
            tmp = port_path.with_name(port_path.name + f".tmp{os.getpid()}")
            tmp.write_text(f"{port}\n", encoding="utf-8")
            os.replace(tmp, port_path)
        recovered = getattr(service, "recovered_count", 0)
        extra = f", {recovered} campaign(s) recovered" if recovered else ""
        print(f"serving on http://{host}:{port} "
              f"(store: {config.store_dir}"
              + (f", journal: {config.state_dir}" if config.state_dir
                 else "") + f"{extra})", flush=True)

    try:
        asyncio.run(serve(config, on_ready=_on_ready))
    except KeyboardInterrupt:
        print("repro serve: interrupted", file=sys.stderr)
    return 0


def cmd_submit(args) -> int:
    """Submit one campaign to a running ``repro serve``."""
    import json

    from .service import (JOB_REQUEST_SCHEMA, RetryPolicy, ServiceClient,
                          ServiceError)

    params: dict = {}
    for item in args.param or ():
        key, sep, raw = item.partition("=")
        if not sep or not key:
            print(f"submit: --param wants KEY=VALUE, got {item!r}",
                  file=sys.stderr)
            return 2
        try:
            params[key] = json.loads(raw)
        except json.JSONDecodeError:
            params[key] = raw      # bare strings stay strings
    options = CampaignOptions.from_args(args).for_service()
    doc = {"schema": JOB_REQUEST_SCHEMA, "tenant": args.tenant,
           "experiment": args.experiment}
    if params:
        doc["params"] = params
    if options.to_dict():
        doc["options"] = options.to_dict()

    retry = RetryPolicy(attempts=args.retries) if args.retries else None
    client = ServiceClient(args.url, retry=retry)
    try:
        status = client.submit(doc, wait=not args.no_wait,
                               idempotent=args.idempotent)
        if args.follow and not args.no_wait:
            # the campaign is finished; replay its event stream
            for event in client.events(status["id"]):
                print(json.dumps(event, sort_keys=True), file=sys.stderr)
    except ServiceError as exc:
        print(f"submit: {exc.code}: {exc}", file=sys.stderr)
        if getattr(exc, "retry_after_s", 0):
            print(f"submit: retry in {exc.retry_after_s:.3f}s",
                  file=sys.stderr)
        return 1
    if args.json:
        print(json.dumps(status, indent=2, sort_keys=True))
        return 0 if status["state"] in ("done", "queued") else 1
    print(f"campaign {status['id']}: {status['state']} "
          f"({status['job_count']} jobs)")
    memo = status.get("memo")
    if memo:
        print(f"memo: {memo['hits']}/{memo['jobs']} jobs from the store "
              f"(hit rate {memo['hit_rate'] * 100:.1f}%)")
    error = status.get("error")
    if error:
        print(f"error: {error.get('error')}: {error.get('message')}",
              file=sys.stderr)
    return 0 if status["state"] in ("done", "queued") else 1


def cmd_bench(args) -> int:
    import json

    from .bench import (WORKLOADS, compare, document, format_table,
                        load_document, run_bench)

    workloads = tuple(args.workloads) if args.workloads else WORKLOADS
    for name in workloads:
        if name not in WORKLOADS:
            print(f"bench: unknown workload {name!r} "
                  f"(choose from {', '.join(WORKLOADS)})", file=sys.stderr)
            return 2
    results = run_bench(quick=args.quick, workloads=workloads)
    print(format_table(results))
    doc = document(results, quick=args.quick)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            json.dump(doc, fh, indent=2)
            fh.write("\n")
        print(f"wrote {args.out}")
    if args.baseline:
        try:
            baseline = load_document(args.baseline)
            problems = compare(doc, baseline, tolerance=args.tolerance)
        except (OSError, json.JSONDecodeError, ValueError) as exc:
            print(f"bench: cannot compare against {args.baseline}: {exc}",
                  file=sys.stderr)
            return 2
        if problems:
            for line in problems:
                print(f"REGRESSION {line}", file=sys.stderr)
            return 1
        print(f"no speedup regression vs {args.baseline} "
              f"(tolerance {args.tolerance:.0%})")
    return 0


def cmd_stats(args) -> int:
    import json

    from .bench import diff_bench, is_bench_document, summarize_bench
    from .telemetry import SchemaError, validate_manifest

    if len(args.manifest) > 2:
        print("stats takes one document (summary) or two (diff)",
              file=sys.stderr)
        return 2
    docs = []
    bench = []
    for path in args.manifest:
        try:
            with open(path, "r", encoding="utf-8") as fh:
                raw = json.load(fh)
        except OSError as exc:
            print(f"stats: cannot read {path}: {exc}", file=sys.stderr)
            return 2
        except json.JSONDecodeError as exc:
            print(f"stats: {path} is not JSON: {exc}", file=sys.stderr)
            return 2
        if is_bench_document(raw):
            bench.append(True)
            docs.append(raw)
            continue
        bench.append(False)
        try:
            doc = RunManifest.load(path)
            validate_manifest(doc)
        except (json.JSONDecodeError, SchemaError) as exc:
            reason = str(exc).splitlines()[0]
            print(f"stats: {path} is not a run manifest or bench "
                  f"document: {reason}", file=sys.stderr)
            return 2
        docs.append(doc)
    if len(set(bench)) > 1:
        print("stats: cannot diff a run manifest against a bench "
              "document", file=sys.stderr)
        return 2
    if bench[0]:
        if len(docs) == 1:
            print(summarize_bench(docs[0]))
        else:
            print(diff_bench(docs[0], docs[1]))
        return 0
    if len(docs) == 1:
        print("\n".join(summarize_manifest(docs[0])))
    else:
        print("\n".join(diff_manifests(docs[0], docs[1])))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Phantom (MICRO'23) reproduction on a simulated "
                    "microarchitecture")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("uarches", help="list modelled CPUs") \
        .set_defaults(fn=cmd_uarches)

    p = sub.add_parser("matrix", help="Table 1 speculation matrix")
    p.add_argument("--uarch", default="amd",
                   help="'all', 'amd', or one name")
    CampaignOptions.add_arguments(p)
    _add_telemetry(p)
    p.set_defaults(fn=cmd_matrix)

    p = sub.add_parser("kaslr", help="break kernel-image KASLR (§7.1)")
    _add_uarch(p, default="zen 3")
    CampaignOptions.add_arguments(p)
    _add_telemetry(p)
    p.set_defaults(fn=cmd_kaslr)

    p = sub.add_parser("physmap", help="break physmap KASLR (§7.2)")
    _add_uarch(p, default="zen 2")
    CampaignOptions.add_arguments(p)
    _add_telemetry(p)
    p.set_defaults(fn=cmd_physmap)

    p = sub.add_parser("leak", help="full §7 chain: leak kernel memory")
    _add_uarch(p, default="zen 2")
    p.add_argument("--bytes", type=int, default=128)
    CampaignOptions.add_arguments(p)
    _add_telemetry(p)
    p.set_defaults(fn=cmd_leak)

    p = sub.add_parser("covert", help="covert-channel capacity (§6.4)")
    _add_uarch(p, default="zen 4")
    p.add_argument("--bits", type=int, default=1024)
    CampaignOptions.add_arguments(p)
    _add_telemetry(p)
    p.set_defaults(fn=cmd_covert)

    p = sub.add_parser("rev-btb", help="recover BTB functions (§6.2)")
    _add_uarch(p, default="zen 3")
    p.add_argument("--samples", type=int, default=200_000)
    _add_telemetry(p)
    p.set_defaults(fn=cmd_rev_btb)

    p = sub.add_parser("gadgets", help="gadget census (§9.3)")
    p.add_argument("--functions", type=int, default=400)
    p.add_argument("--seed", type=int, default=0)
    _add_telemetry(p)
    p.set_defaults(fn=cmd_gadgets)

    p = sub.add_parser("trace",
                       help="trace a syscall's speculation, or inspect "
                            "a --spans capture (summarize/export)")
    _add_uarch(p, default="zen 2")
    p.add_argument("--nr", type=int, default=39, help="syscall number")
    p.add_argument("--rdi", type=int, default=0)
    p.add_argument("--rsi", type=int, default=0)
    p.add_argument("--limit", type=int, default=200)
    _add_telemetry(p)
    p.set_defaults(fn=cmd_trace)
    tsub = p.add_subparsers(dest="trace_command")
    ps = tsub.add_parser("summarize",
                         help="critical path + per-phase histogram "
                              "table from a span capture")
    ps.add_argument("spans",
                    help="span capture directory (--spans DIR of a "
                         "previous run) or a single span .jsonl file")
    ps.set_defaults(fn=cmd_trace_summarize)
    pe = tsub.add_parser("export",
                         help="export a span capture (Perfetto) or a "
                              "run manifest's metrics (OpenMetrics)")
    pe.add_argument("source",
                    help="span capture dir or .jsonl (perfetto), or a "
                         "run manifest (openmetrics)")
    pe.add_argument("--format", choices=("perfetto", "openmetrics"),
                    default="perfetto",
                    help="output format (default perfetto — Chrome "
                         "trace-event JSON for ui.perfetto.dev)")
    pe.add_argument("--out", metavar="FILE", default=None,
                    help="write to FILE instead of stdout")
    pe.set_defaults(fn=cmd_trace_export)

    p = sub.add_parser("fuzz",
                       help="differential fuzz the dual-engine simulator")
    p.add_argument("--seed", type=int, default=0,
                   help="campaign seed (program i gets a seed derived "
                        "from this and i only)")
    p.add_argument("--iters", type=int, default=200,
                   help="number of generated programs (default 200)")
    p.add_argument("--time-budget", type=float, default=0, metavar="SEC",
                   help="stop starting new programs after SEC seconds "
                        "(0 = no budget; ignored with --jobs > 1)")
    p.add_argument("--shape", default=None, choices=_fuzz_shapes(),
                   help="restrict the generator to one program shape")
    p.add_argument("--uarch", action="append", default=None,
                   metavar="NAME",
                   help="µarch to include in the oracle matrix "
                        "(repeatable; default: zen2 and zen3)")
    p.add_argument("--artifact-dir", default="fuzz-artifacts",
                   metavar="DIR",
                   help="where minimized counterexamples are written")
    p.add_argument("--no-invariants", action="store_true",
                   help="engine differential only, skip invariant checks")
    p.add_argument("--no-shrink", action="store_true",
                   help="write counterexamples without minimizing them")
    p.add_argument("--contract", default=None, choices=_fuzz_contracts(),
                   metavar="NAME",
                   help="relational mode: check public-equivalent "
                        "secret-divergent input pairs against leakage "
                        "contract NAME (see 'repro contracts')")
    p.add_argument("--mitigation", default=None,
                   choices=_mitigation_names(), metavar="NAME",
                   help="override the contract's mitigation setting "
                        "(requires --contract)")
    CampaignOptions.add_arguments(p, jobs_default=1)
    _add_telemetry(p)
    p.set_defaults(fn=cmd_fuzz)

    p = sub.add_parser("contracts",
                       help="list leakage contracts and the mitigation "
                            "registry")
    csub = p.add_subparsers(dest="contracts_command")
    pl = csub.add_parser("list", help="contract and mitigation tables")
    pl.set_defaults(fn=cmd_contracts)
    p.set_defaults(fn=cmd_contracts)

    p = sub.add_parser("chaos",
                       help="fault-injection smoke: inject every fault "
                            "kind, interrupt, resume, diff vs clean")
    p.add_argument("--uarch", default="zen 2",
                   help="microarchitecture for the victim campaign")
    p.add_argument("--seed", type=int, default=0,
                   help="chaos seed: drives both the campaign and "
                        "which fault lands on which job")
    p.add_argument("--cells", type=int, default=8, metavar="N",
                   help="matrix cells in the victim campaign "
                        "(0 = all 22; default 8 keeps the smoke fast)")
    p.add_argument("--jobs", type=int, default=2,
                   help="worker processes (default 2; at 1, kill/hang "
                        "faults soften to in-process raises)")
    p.add_argument("--timeout", type=float, default=10.0, metavar="SEC",
                   help="per-job timeout (default 10)")
    p.add_argument("--retries", type=int, default=2,
                   help="per-job retries (default 2; must cover the "
                        "injected raise)")
    p.add_argument("--watchdog", type=float, default=3.0, metavar="SEC",
                   help="supervisor heartbeat grace before hung "
                        "workers are killed (default 3)")
    p.add_argument("--hang", type=float, default=30.0, metavar="SEC",
                   help="how long the injected hang sleeps (default "
                        "30; must outlive the watchdog grace)")
    p.add_argument("--state-dir", default=None, metavar="DIR",
                   help="where fired-fault markers and the checkpoint "
                        "live (default: a fresh temp dir; reusing a "
                        "dir suppresses already-fired faults)")
    p.add_argument("--spans", metavar="DIR", default=None,
                   help="record phantom.span/1 spans under DIR "
                        "(shows which job each recovery acted on)")
    p.add_argument("--progress", metavar="FILE", default=None,
                   help="stream phantom.progress/1 events to FILE "
                        "('-' = stdout, a number = an inherited fd)")
    p.add_argument("--service", action="store_true",
                   help="service-level chaos instead: SIGKILL a 'repro "
                        "serve --state-dir' subprocess mid-campaign, "
                        "restart it, require a fingerprint-identical "
                        "recovery with zero duplicate job executions")
    p.add_argument("--json", action="store_true",
                   help="with --service: print the "
                        "phantom.service-chaos/1 report as JSON")
    p.set_defaults(fn=cmd_chaos)

    p = sub.add_parser("serve",
                       help="run the campaign service (HTTP + "
                            "content-addressed result memoization)")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8321,
                   help="listen port (default 8321; 0 = ephemeral)")
    p.add_argument("--store-dir", default="service-store", metavar="DIR",
                   help="content-addressed result store root "
                        "(default ./service-store)")
    p.add_argument("--jobs", type=int, default=1,
                   help="default worker processes per campaign when a "
                        "request does not name its own (default 1)")
    p.add_argument("--store-max-entries", type=int, default=0,
                   metavar="N",
                   help="evict oldest results beyond N entries "
                        "(default 0 = unbounded)")
    p.add_argument("--max-queue", type=int, default=256, metavar="N",
                   help="queued-campaign backlog limit (default 256)")
    p.add_argument("--state-dir", default=None, metavar="DIR",
                   help="durable intake journal home: admitted "
                        "requests are journaled before submit returns "
                        "and replayed on the next start (default: no "
                        "journal, in-memory only)")
    p.add_argument("--port-file", default=None, metavar="FILE",
                   help="after binding, write the listen port to FILE "
                        "atomically (for scripts using --port 0)")
    p.add_argument("--rate", type=float, default=20.0, metavar="PER_S",
                   help="per-tenant submission rate (default 20/s)")
    p.add_argument("--burst", type=int, default=40,
                   help="per-tenant burst depth (default 40)")
    p.add_argument("--max-active-campaigns", type=int, default=8,
                   metavar="N",
                   help="per-tenant concurrent campaigns (default 8)")
    p.add_argument("--max-jobs-per-campaign", type=int, default=4096,
                   metavar="N",
                   help="per-campaign job ceiling (default 4096)")
    p.add_argument("--selftest", action="store_true",
                   help="boot a private service, replay overlapping "
                        "campaigns against it, report the dedup and "
                        "quota verdict, exit 0/1")
    p.add_argument("--selftest-distinct", type=int, default=6,
                   metavar="N", help=argparse.SUPPRESS)
    p.add_argument("--selftest-replays", type=int, default=120,
                   metavar="N", help=argparse.SUPPRESS)
    p.add_argument("--json", action="store_true",
                   help="with --selftest: print the "
                        "phantom.load-replay/1 report as JSON")
    p.set_defaults(fn=cmd_serve)

    p = sub.add_parser("submit",
                       help="submit one campaign to a running "
                            "'repro serve'")
    p.add_argument("experiment",
                   help="experiment name (matrix, kaslr, covert, fuzz)")
    p.add_argument("--url", default="http://127.0.0.1:8321",
                   help="service base URL (default "
                        "http://127.0.0.1:8321)")
    p.add_argument("--tenant", default=os.environ.get("USER") or "cli",
                   help="tenant name for quota accounting "
                        "(default: $USER)")
    p.add_argument("--param", action="append", metavar="KEY=VALUE",
                   default=None,
                   help="experiment parameter (repeatable; VALUE is "
                        "parsed as JSON, else kept as a string — e.g. "
                        "--param cells=4 --param 'uarches=[\"zen 2\"]')")
    p.add_argument("--jobs", type=int, default=0,
                   help="worker processes the service should use for "
                        "this campaign (default 0 = service default)")
    p.add_argument("--no-wait", action="store_true",
                   help="return after the 202 instead of waiting for "
                        "the campaign to finish")
    p.add_argument("--retries", type=int, default=0, metavar="N",
                   help="retry transient failures (connection refused, "
                        "429, 503) up to N attempts with jittered "
                        "backoff honoring Retry-After (default 0)")
    p.add_argument("--idempotent", action="store_true",
                   help="stamp the request with an idempotency key "
                        "derived from its fingerprint, so a resubmit "
                        "returns the original campaign instead of "
                        "running twice")
    p.add_argument("--follow", action="store_true",
                   help="after completion, replay the campaign's "
                        "phantom.progress/1 events to stderr")
    p.add_argument("--json", action="store_true",
                   help="print the final phantom.campaign-status/1 "
                        "document")
    p.set_defaults(fn=cmd_submit)

    p = sub.add_parser("bench",
                       help="simulator throughput: fast vs naive engine")
    p.add_argument("--quick", action="store_true",
                   help="CI-sized workloads (seconds, not minutes)")
    p.add_argument("--out", metavar="FILE", default=None,
                   help="write the phantom.bench/1 document to FILE")
    p.add_argument("--baseline", metavar="FILE", default=None,
                   help="compare speedups against a committed "
                        "phantom.bench/1 document; exit 1 on regression")
    p.add_argument("--tolerance", type=float, default=0.3,
                   help="allowed fractional speedup drop vs the "
                        "baseline (default 0.3)")
    p.add_argument("--workloads", nargs="+", metavar="NAME",
                   default=None,
                   help="subset of workloads to run (default: all)")
    p.set_defaults(fn=cmd_bench)

    p = sub.add_parser("stats",
                       help="summarize one run manifest or bench "
                            "document, or diff two")
    p.add_argument("manifest", nargs="+",
                   help="run manifest(s) written by --json/--results-dir, "
                        "or phantom.bench/1 document(s) from `repro "
                        "bench --out`")
    p.set_defaults(fn=cmd_stats)

    return parser


def main(argv: list[str] | None = None) -> int:
    from .runner import CampaignInterrupted

    args = build_parser().parse_args(argv)
    try:
        return args.fn(args)
    except BrokenPipeError:   # e.g. `repro stats ... | head`
        return 0
    except CampaignInterrupted as exc:
        print(f"repro: {exc}", file=sys.stderr)
        if exc.checkpoint:
            print(f"repro: rerun with --resume {exc.checkpoint} to "
                  f"pick up where this run stopped", file=sys.stderr)
        return 130   # what the shell reports for an uncaught SIGINT


if __name__ == "__main__":   # pragma: no cover
    sys.exit(main())
