"""The stable public API, in one flat namespace.

Everything a script, notebook or downstream package should need lives
here, re-exported from the subsystem that implements it::

    from repro.api import Machine, MachineSpec, run_campaign

The internal packages (``repro.core``, ``repro.runner``,
``repro.kernel``, ...) remain importable — they are where the
docstrings and the physics live — but their layout is allowed to shift
between versions; ``repro.api`` is the surface that is not.  The
examples under ``examples/`` and the code snippets in ``docs/`` import
through this module for exactly that reason.

The facade groups into four layers:

* **Simulation** — :class:`Machine` (an interactive simulated host),
  :class:`MachineSpec` (its frozen, picklable description).
* **Campaigns** — the :class:`Experiment` protocol, :class:`JobSpec`,
  :func:`run_campaign` and its :class:`CampaignResult`/
  :class:`CampaignOptions`, :func:`manifest_fingerprint` for comparing
  runs, :func:`spec_fingerprint` for identifying jobs.
* **Telemetry** — :class:`RunManifest`, :func:`enable_metrics`,
  :func:`one_line_summary`.
* **Service** — the content-addressed :class:`ResultStore`,
  :func:`run_campaign_memoized`, and the :class:`ServiceClient` for a
  running ``repro serve``.
"""

from __future__ import annotations

from .core.experiment import Experiment
from .kernel import Machine, MachineSpec
from .resilience import spec_fingerprint
from .runner import (CampaignOptions, CampaignResult, JobContext,
                     JobResult, JobSpec, manifest_fingerprint,
                     run_campaign)
from .service import ResultStore, ServiceClient, run_campaign_memoized
from .telemetry import RunManifest, enable_metrics, one_line_summary

__all__ = [
    # simulation
    "Machine",
    "MachineSpec",
    # campaigns
    "CampaignOptions",
    "CampaignResult",
    "Experiment",
    "JobContext",
    "JobResult",
    "JobSpec",
    "manifest_fingerprint",
    "run_campaign",
    "spec_fingerprint",
    # telemetry
    "RunManifest",
    "enable_metrics",
    "one_line_summary",
    # service
    "ResultStore",
    "ServiceClient",
    "run_campaign_memoized",
]
