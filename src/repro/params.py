"""Global architectural constants shared across the simulator.

These mirror the fixed quantities the paper relies on: 48-bit canonical
virtual addresses, 4 KiB pages, 64-byte cache lines and 32-byte fetch
blocks ("typically 32 B", paper section 6).
"""

from __future__ import annotations

#: Number of implemented virtual-address bits (x86-64 4-level paging).
VA_BITS = 48

#: Bytes per page.
PAGE_SIZE = 4096
PAGE_SHIFT = 12

#: Bytes per 2 MiB transparent huge page (used by the physmap exploit).
HUGE_PAGE_SIZE = 2 * 1024 * 1024
HUGE_PAGE_SHIFT = 21

#: Bytes per cache line.
CACHE_LINE = 64
CACHE_LINE_SHIFT = 6

#: Bytes fetched per instruction-fetch transaction.
FETCH_BLOCK = 32

#: Mask selecting the low 64 bits of an integer (register width).
MASK64 = (1 << 64) - 1

#: Mask selecting a canonical 48-bit virtual address.
VA_MASK = (1 << VA_BITS) - 1

#: Number of possible kernel-image KASLR slots (paper section 7.1, [38]).
KERNEL_IMAGE_SLOTS = 488

#: Number of possible physmap KASLR slots (paper section 7.2, [38]).
PHYSMAP_SLOTS = 25600


def canonical(va: int) -> int:
    """Sign-extend bit 47 of *va* into bits 48..63 (x86-64 canonical form)."""
    va &= MASK64
    if va & (1 << (VA_BITS - 1)):
        return va | (MASK64 ^ VA_MASK)
    return va & VA_MASK


def is_canonical(va: int) -> bool:
    """Return True if *va* is a canonical 48-bit virtual address."""
    return canonical(va) == (va & MASK64)


def is_kernel_va(va: int) -> bool:
    """Return True for upper-half (supervisor) canonical addresses."""
    return bool(va & (1 << (VA_BITS - 1)))


def page_base(va: int) -> int:
    """Round *va* down to its 4 KiB page base."""
    return va & ~(PAGE_SIZE - 1)


def line_base(addr: int) -> int:
    """Round *addr* down to its cache-line base."""
    return addr & ~(CACHE_LINE - 1)
