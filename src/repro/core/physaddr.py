"""Finding the physical address of a user page (paper §7.4, Table 5).

With the kernel image and physmap locations known, the attacker guesses
the physical address Pg of a virtual address A in their own program:
``readv()`` with ``rsi = physmap + Pg + off - 0xbe0`` makes the phantom
disclosure gadget transiently load ``physmap + Pg + off``.  If the
guess is right, that is the same physical line as ``A + off``, which
Flush+Reload on A detects.  A 2 MiB transparent huge page reduces the
entropy to huge-page-aligned candidates.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..kernel import SYS_READV
from ..kernel.layout import reference_offsets
from ..params import HUGE_PAGE_SIZE
from ..sidechannel import Timer, calibrate_threshold
from .primitives import P2MappedMemory, PhantomInjector

#: Line offset probed inside the huge page.
PROBE_LINE_OFFSET = 0x40


@dataclass
class PhysAddrResult:
    """Outcome of one physical-address search."""

    guessed_pa: int | None
    seconds: float
    candidates_scanned: int

    def correct(self, machine, buffer_va: int) -> bool:
        actual = machine.mem.aspace.translate_noperm(buffer_va)
        return self.guessed_pa == actual


def find_physical_address(machine, image_base: int, physmap_base: int,
                          buffer_va: int, *, verify_rounds: int = 3,
                          min_hits: int = 2) -> PhysAddrResult:
    """Determine the physical address of huge page *buffer_va*."""
    if not machine.uarch.phantom_reaches_execute:
        raise ValueError(
            f"{machine.uarch.name}: P2/P3 require a phantom execute "
            f"window (Zen 1/2)")
    offsets = reference_offsets()
    call_site = image_base + offsets["fdget_call_site"]
    gadget = image_base + offsets["physmap_gadget"]
    injector = PhantomInjector(machine)
    timer = Timer(machine)

    probe_va = buffer_va + PROBE_LINE_OFFSET
    machine.user_touch(probe_va)
    threshold = calibrate_threshold(timer, probe_va)
    start = machine.seconds()

    def probe(pg: int) -> bool:
        machine.clflush(probe_va)
        injector.inject(call_site, gadget)
        kernel_ptr = physmap_base + pg + PROBE_LINE_OFFSET
        machine.syscall(SYS_READV, 3,
                        kernel_ptr - P2MappedMemory.GADGET_DISPLACEMENT)
        return timer.time_load(probe_va) < threshold

    candidates = range(0, machine.mem.phys.size, HUGE_PAGE_SIZE)
    for scanned, pg in enumerate(candidates, 1):
        if not probe(pg):
            continue
        hits = sum(probe(pg) for _ in range(verify_rounds))
        if hits >= min_hits:
            return PhysAddrResult(guessed_pa=pg,
                                  seconds=machine.seconds() - start,
                                  candidates_scanned=scanned)
    return PhysAddrResult(guessed_pa=None,
                          seconds=machine.seconds() - start,
                          candidates_scanned=len(candidates))
