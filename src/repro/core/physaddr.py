"""Finding the physical address of a user page (paper §7.4, Table 5).

With the kernel image and physmap locations known, the attacker guesses
the physical address Pg of a virtual address A in their own program:
``readv()`` with ``rsi = physmap + Pg + off - 0xbe0`` makes the phantom
disclosure gadget transiently load ``physmap + Pg + off``.  If the
guess is right, that is the same physical line as ``A + off``, which
Flush+Reload on A detects.  A 2 MiB transparent huge page reduces the
entropy to huge-page-aligned candidates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import ClassVar

from ..kernel import MachineSpec, SYS_READV
from ..kernel.layout import reference_offsets
from ..params import HUGE_PAGE_SIZE
from ..runner import JobContext, JobSpec, derive_seed
from ..sidechannel import Timer, calibrate_threshold
from .experiment import chunked
from .primitives import P2MappedMemory, PhantomInjector
from .results import hexaddr

#: Line offset probed inside the huge page.
PROBE_LINE_OFFSET = 0x40


@dataclass
class PhysAddrResult:
    """Outcome of one physical-address search."""

    guessed_pa: int | None
    seconds: float
    candidates_scanned: int

    def correct(self, machine, buffer_va: int) -> bool:
        actual = machine.mem.aspace.translate_noperm(buffer_va)
        return self.guessed_pa == actual

    def to_dict(self) -> dict:
        return {"guessed_pa": hexaddr(self.guessed_pa),
                "candidates_scanned": self.candidates_scanned,
                "simulated_ms": self.seconds * 1000}

    def summary(self) -> str:
        guess = (f"{self.guessed_pa:#x}" if self.guessed_pa is not None
                 else "none")
        return (f"guessed physical address {guess} after "
                f"{self.candidates_scanned} candidates, "
                f"{self.seconds * 1000:.2f} simulated ms")


def find_physical_address(machine, image_base: int, physmap_base: int,
                          buffer_va: int, *, verify_rounds: int = 3,
                          min_hits: int = 2,
                          candidates=None) -> PhysAddrResult:
    """Determine the physical address of huge page *buffer_va*.

    *candidates* restricts the guess scan to one chunk of huge-page
    aligned physical addresses (the parallel campaign's unit)."""
    if not machine.uarch.phantom_reaches_execute:
        raise ValueError(
            f"{machine.uarch.name}: P2/P3 require a phantom execute "
            f"window (Zen 1/2)")
    offsets = reference_offsets()
    call_site = image_base + offsets["fdget_call_site"]
    gadget = image_base + offsets["physmap_gadget"]
    injector = PhantomInjector(machine)
    timer = Timer(machine)

    probe_va = buffer_va + PROBE_LINE_OFFSET
    machine.user_touch(probe_va)
    threshold = calibrate_threshold(timer, probe_va)
    start = machine.seconds()

    def probe(pg: int) -> bool:
        machine.clflush(probe_va)
        injector.inject(call_site, gadget)
        kernel_ptr = physmap_base + pg + PROBE_LINE_OFFSET
        machine.syscall(SYS_READV, 3,
                        kernel_ptr - P2MappedMemory.GADGET_DISPLACEMENT)
        return timer.time_load(probe_va) < threshold

    if candidates is None:
        candidates = range(0, machine.mem.phys.size, HUGE_PAGE_SIZE)
    for scanned, pg in enumerate(candidates, 1):
        if not probe(pg):
            continue
        hits = sum(probe(pg) for _ in range(verify_rounds))
        if hits >= min_hits:
            return PhysAddrResult(guessed_pa=pg,
                                  seconds=machine.seconds() - start,
                                  candidates_scanned=scanned)
    return PhysAddrResult(guessed_pa=None,
                          seconds=machine.seconds() - start,
                          candidates_scanned=len(candidates))


@dataclass(frozen=True)
class PhysAddrExperiment:
    """The Table 5 campaign: huge-page candidates in fixed chunks.

    Every job boots an identical machine and maps the *same* huge page
    at *buffer_va* — identical machines allocate identical frames, so
    the guess each chunk confirms (or rules out) is consistent across
    workers.  The reduce step keeps the first confirmed guess, like the
    serial scan; ``candidates_scanned`` is total probe work over all
    chunks (identical at any ``--jobs``).
    """

    name: ClassVar[str] = "physaddr"

    machine: MachineSpec
    image_base: int
    physmap_base: int
    buffer_va: int
    verify_rounds: int = 3
    min_hits: int = 2
    chunk_candidates: int = 64

    def campaign_config(self) -> dict:
        return {"uarch": self.machine.uarch,
                "kaslr_seed": self.machine.kaslr_seed,
                "buffer_va": f"{self.buffer_va:#x}"}

    def _candidates(self) -> range:
        return range(0, self.machine.phys_mem, HUGE_PAGE_SIZE)

    def job_specs(self) -> list[JobSpec]:
        total = len(self._candidates())
        return [JobSpec.make(self.name, (index,),
                             derive_seed(self.machine.kaslr_seed, (index,)),
                             machine=self.machine, start=start, stop=stop)
                for index, start, stop in chunked(total,
                                                  self.chunk_candidates)]

    def run_one(self, spec: JobSpec, ctx: JobContext) -> PhysAddrResult:
        machine = ctx.boot(spec.machine)
        machine.map_user_huge(self.buffer_va)
        chunk = self._candidates()[spec.param("start"):spec.param("stop")]
        return find_physical_address(machine, self.image_base,
                                     self.physmap_base, self.buffer_va,
                                     verify_rounds=self.verify_rounds,
                                     min_hits=self.min_hits,
                                     candidates=chunk)

    def reduce(self, results) -> PhysAddrResult:
        chunks = [r.value for r in results if r.ok]
        guessed = next((c.guessed_pa for c in chunks
                        if c.guessed_pa is not None), None)
        return PhysAddrResult(
            guessed_pa=guessed,
            seconds=sum(c.seconds for c in chunks),
            candidates_scanned=sum(c.candidates_scanned for c in chunks))
