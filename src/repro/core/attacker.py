"""Unprivileged attacker runtime: BTB training by executing real code.

Training never pokes simulator internals.  Every ``train_*`` method
JIT-writes a tiny snippet into attacker-owned pages and *executes* it on
the simulated CPU; the BTB entry appears because the branch retired,
exactly as on hardware.  Training toward kernel (or unmapped) targets
architecturally faults at the target fetch — the snippet's branch has
already retired by then, so the entry survives and the runtime catches
the fault (the paper's §6.2 technique).
"""

from __future__ import annotations

from ..errors import PageFault
from ..isa import Assembler, Cond, Reg
from ..params import PAGE_SIZE, VA_MASK, page_base

#: Landing pad with a single ``hlt``, placed once.
HALT_PAD = 0x0000_0000_0F00_0000


class AttackerRuntime:
    """Code-writing and training facilities of the attacker process."""

    def __init__(self, machine) -> None:
        self.machine = machine
        self._mapped: set[int] = set()
        self.ensure_mapped(HALT_PAD, 16)
        self.write_code(HALT_PAD, b"\xf4")

    # -- memory management ---------------------------------------------------

    def ensure_mapped(self, va: int, size: int, *, nx: bool = False) -> None:
        """Map any not-yet-mapped pages covering ``[va, va+size)``."""
        page = page_base(va)
        while page < va + size:
            if page not in self._mapped:
                self.machine.map_user(page, PAGE_SIZE, nx=nx)
                self._mapped.add(page)
            page += PAGE_SIZE

    def write_code(self, va: int, data: bytes) -> None:
        self.ensure_mapped(va, len(data))
        self.machine.write_user(va, data)

    def place_gadget(self, va: int, build) -> dict[str, int]:
        """Assemble ``build(asm)`` at *va* and install it."""
        asm = Assembler(va)
        build(asm)
        segment, symbols = asm.finish()
        self.write_code(segment.base, segment.data)
        return symbols

    # -- execution -------------------------------------------------------------

    def run(self, pc: int, *, regs=None, catch_fault: bool = True) -> bool:
        """Run attacker code; returns False if it faulted (and was caught)."""
        try:
            self.machine.run_user(pc, regs=regs)
            return True
        except PageFault:
            if not catch_fault:
                raise
            return False

    # -- training snippets -------------------------------------------------------

    def train_indirect(self, src: int, target: int, *, regs=None) -> bool:
        """``mov rax, target ; jmp rax`` with the jmp at *src*.

        Works for any 64-bit target, including kernel addresses (the
        resulting page fault is caught).  Returns True if the target was
        architecturally reached (user targets), False on a caught fault.
        """
        src &= VA_MASK
        asm = Assembler(src - 10)
        asm.mov_ri(Reg.RAX, target)
        jmp_pc = asm.jmp_reg(Reg.RAX)
        assert jmp_pc == src
        segment, _ = asm.finish()
        self.write_code(segment.base, segment.data)
        return self.run(src - 10, regs=regs)

    def train_call_indirect(self, src: int, target: int, *, regs=None) -> bool:
        """``mov rax, target ; call rax`` with the call at *src*."""
        src &= VA_MASK
        asm = Assembler(src - 10)
        asm.mov_ri(Reg.RAX, target)
        call_pc = asm.call_reg(Reg.RAX)
        assert call_pc == src
        segment, _ = asm.finish()
        self.write_code(segment.base, segment.data)
        return self.run(src - 10, regs=regs)

    def train_direct(self, src: int, target: int, *, regs=None,
                     place_halt: bool = True) -> bool:
        """``jmp rel32`` at *src*; *target* must be within +-2 GiB."""
        src &= VA_MASK
        asm = Assembler(src)
        asm.jmp(target)
        segment, _ = asm.finish()
        self.write_code(segment.base, segment.data)
        if place_halt:
            self.write_code(target, b"\xf4")
        return self.run(src, regs=regs)

    def train_cond(self, src: int, target: int, *, regs=None,
                   place_halt: bool = True) -> bool:
        """Taken ``je rel32`` at *src* (ZF forced by a preceding xor)."""
        src &= VA_MASK
        asm = Assembler(src - 3)
        asm.xor_rr(Reg.RAX, Reg.RAX)
        jcc_pc = asm.jcc(Cond.E, target)
        assert jcc_pc == src
        segment, _ = asm.finish()
        self.write_code(segment.base, segment.data)
        if place_halt:
            self.write_code(target, b"\xf4")
        return self.run(src - 3, regs=regs)

    def train_ret(self, src: int, *, regs=None) -> bool:
        """``ret`` at *src*, returning to the halt pad.

        Installs a RETURN-kind BTB entry at h(src); a victim aliasing
        with it will be predicted as a return (target from the RSB).
        """
        src &= VA_MASK
        asm = Assembler(src - 12)
        asm.mov_ri(Reg.RAX, HALT_PAD)
        asm.push(Reg.RAX)
        asm.pad_to(src)
        asm.ret()
        segment, _ = asm.finish()
        self.write_code(segment.base, segment.data)
        return self.run(src - 12, regs=regs)

    def seed_rsb(self, call_site: int) -> int:
        """Execute a call whose return address is never architecturally
        used, leaving a stale RSB top entry.  Returns that address.

        The helper escapes via an indirect jmp to the halt pad instead
        of returning, so the line after the call stays architecturally
        cold — the canvas ret-trained phantoms land on.
        """
        helper = call_site + 0x100
        asm = Assembler(call_site)
        asm.call(helper)
        segment, _ = asm.finish()
        self.write_code(segment.base, segment.data)
        stale = call_site + 5

        hasm = Assembler(helper)
        hasm.mov_ri(Reg.R11, HALT_PAD)
        hasm.jmp_reg(Reg.R11)
        hsegment, _ = hasm.finish()
        self.write_code(hsegment.base, hsegment.data)

        self.run(call_site)
        return stale

    def execute_nops(self, va: int, count: int = 8, *, regs=None) -> None:
        """Run a nop sled at *va* (the "non branch" victim/trainer)."""
        self.write_code(va, b"\x90" * count + b"\xf4")
        self.run(va, regs=regs, catch_fault=False)
