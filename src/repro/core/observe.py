"""Observation channels for Phantom speculation (paper §5.1, Figure 5).

A user-space harness in the spirit of Figure 4: training code **A**
installs a BTB entry; victim code **B** (at a BTB-aliased address)
carries an instruction of a possibly different type; the *landing site*
— wherever the trained prediction makes the frontend go — holds a
signal gadget.  Three channels observe how far the landing advanced:

* **IF** — time an instruction fetch of the landing line (I-cache,
  Figure 5 A; for pc-relative trainings the probe is C', the address at
  the same relative distance from B as C is from A);
* **ID** — prime the landing's µop-cache set with a jmp-series of 7
  direct branches 4096 bytes apart (Figure 5 B), then count µop-cache
  misses when re-executing the series;
* **EX** — the landing gadget loads ``[rcx]``; time a reload of the
  probe address.

Nothing reads simulator internals: the channels go through timers and
performance counters only, like the paper's native tooling.

Each measurement should run on a **fresh machine** (the paper uses
fresh victim processes): a victim branch that executes architecturally
installs its own correct BTB entry, which would make later rounds
measure a correctly predicted branch instead of a phantom.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..isa import Assembler, Cond, Reg
from ..params import PAGE_SIZE, VA_MASK
from ..pipeline import Reach
from ..sidechannel import Timer, calibrate_threshold
from .attacker import AttackerRuntime


class TrainKind(enum.Enum):
    """Training branch types of Table 1's rows."""

    INDIRECT = "jmp*"
    DIRECT = "jmp"
    CONDITIONAL = "jcc"
    RETURN = "ret"
    NON_BRANCH = "non branch"


class VictimKind(enum.Enum):
    """Victim instruction types of Table 1's columns."""

    INDIRECT = "jmp*"
    DIRECT = "jmp"
    CONDITIONAL = "jcc"
    RETURN = "ret"
    NON_BRANCH = "non branch"


#: Encoded length of each victim's branch-source instruction.
_VICTIM_LEN = {
    VictimKind.INDIRECT: 2,      # jmp rax
    VictimKind.DIRECT: 5,        # jmp rel32
    VictimKind.CONDITIONAL: 6,   # jcc rel32
    VictimKind.RETURN: 1,        # ret
    VictimKind.NON_BRANCH: 1,    # nop
}

# Fixed user-space layout of the experiment.
_A_PAGE = 0x0000_0000_0410_0000     # training page
_C_TARGET = 0x0000_0000_0480_0B00   # absolute target C (jmp* training)
_SERIES_BASE = 0x0000_0000_0500_0000
_PROBE_DATA = 0x0000_0000_0580_0000
_RSB_SEED_CALL = 0x0000_0000_0590_0AFB  # call ends at the 0xB00 edge

#: Page offset where every branch victim's source instruction *ends*:
#: the fall-through (and all landings) start a fresh cache line and
#: µop-cache window (set 44).
_EDGE_OFFSET = 0xB00
#: Non-branch victims sit mid-line instead so that their architectural
#: fall-through never touches the landing's line or µop-cache set.
_NB_OFFSET = 0xAC8
#: Page offset of the pc-relative training target: C' then shares the
#: landing line offset.
_PCREL_TARGET_OFFSET = 0x2B00


@dataclass
class ExperimentResult:
    """Per-channel outcome for one (training, victim) combination."""

    fetch: bool
    decode: bool
    execute: bool

    @property
    def reach(self) -> Reach:
        if self.execute:
            return Reach.EXECUTE
        if self.decode:
            return Reach.DECODE
        if self.fetch:
            return Reach.FETCH
        return Reach.NONE


class TypeConfusionExperiment:
    """One channel measurement for one cell of Table 1.

    Use a fresh machine per measurement (see module docstring).
    """

    def __init__(self, machine, train_kind: TrainKind,
                 victim_kind: VictimKind) -> None:
        if (train_kind.value == victim_kind.value
                and train_kind not in (TrainKind.DIRECT,
                                       TrainKind.CONDITIONAL)):
            raise ValueError(
                f"symmetric combination {train_kind.value} x "
                f"{victim_kind.value} is not a Phantom case")
        self.machine = machine
        self.train_kind = train_kind
        self.victim_kind = victim_kind
        self.attacker = AttackerRuntime(machine)
        self.timer = Timer(machine)

        mask = machine.uarch.btb.user_alias_mask()
        if victim_kind is VictimKind.NON_BRANCH:
            offset = _NB_OFFSET
        else:
            offset = _EDGE_OFFSET - _VICTIM_LEN[victim_kind]
        self.train_src = _A_PAGE + offset
        self.victim_src = (self.train_src ^ mask) & VA_MASK
        self.victim_page = self.victim_src & ~(PAGE_SIZE - 1)

        self._build_victim()
        self.landing = self._landing_address()
        self._build_landing_gadget()
        self._build_series()
        self.exec_threshold = calibrate_threshold(
            self.timer, self.landing, exec_=True)
        self.load_threshold = calibrate_threshold(self.timer, _PROBE_DATA)

    # -- construction -------------------------------------------------------

    def _build_victim(self) -> None:
        att = self.attacker
        b = self.victim_src
        cont = self.victim_page + 0xC80     # architectural continuation
        att.ensure_mapped(self.victim_page, 4 * PAGE_SIZE)
        att.write_code(cont, b"\xf4")       # hlt

        kind = self.victim_kind
        if kind is VictimKind.NON_BRANCH:
            asm = Assembler(b)
            asm.nop()
            asm.hlt()                        # stays in the victim's line
            self.entry = b
        elif kind is VictimKind.INDIRECT:
            asm = Assembler(b - 10)
            asm.mov_ri(Reg.RAX, cont)
            asm.jmp_reg(Reg.RAX)
            self.entry = b - 10
        elif kind is VictimKind.DIRECT:
            asm = Assembler(b)
            asm.jmp(cont)
            self.entry = b
        elif kind is VictimKind.CONDITIONAL:
            asm = Assembler(b - 3)
            asm.xor_rr(Reg.RAX, Reg.RAX)
            asm.jcc(Cond.E, cont)            # always taken
            self.entry = b - 3
        elif kind is VictimKind.RETURN:
            asm = Assembler(b - 12)
            asm.mov_ri(Reg.RAX, cont)
            asm.push(Reg.RAX)
            asm.pad_to(b)
            asm.ret()
            self.entry = b - 12
        segment, _ = asm.finish()
        att.write_code(segment.base, segment.data)

    def _landing_address(self) -> int:
        """Where the trained prediction sends the frontend."""
        if self.train_kind is TrainKind.INDIRECT:
            return _C_TARGET
        if self.train_kind in (TrainKind.DIRECT, TrainKind.CONDITIONAL):
            # PC-relative entry: landing C' = B + (C_A - A).
            rel = (_A_PAGE + _PCREL_TARGET_OFFSET) - self.train_src
            return (self.victim_src + rel) & VA_MASK
        if self.train_kind is TrainKind.RETURN:
            # Predicted target = stale RSB top (seeded during training).
            return _RSB_SEED_CALL + 5
        # NON_BRANCH training: straight-line speculation past the
        # victim's branch: the fall-through line.
        return (self.victim_src + _VICTIM_LEN[self.victim_kind]) & VA_MASK

    def _build_landing_gadget(self) -> None:
        """``mov rbx, [rcx] ; hlt`` at the landing site."""
        asm = Assembler(self.landing)
        asm.load(Reg.RBX, Reg.RCX)
        asm.hlt()
        segment, _ = asm.finish()
        self.attacker.write_code(segment.base, segment.data)
        self.attacker.ensure_mapped(_PROBE_DATA, PAGE_SIZE)

    def _build_series(self) -> None:
        """Figure 5 B's jmp-series: 7 forward jmps 4096 bytes apart in
        the landing's µop-cache set, ending in hlt."""
        offset = self.landing & 0xFC0
        self.series_entry = _SERIES_BASE + offset
        asm = Assembler(self.series_entry)
        for i in range(7):
            asm.jmp(_SERIES_BASE + (i + 1) * PAGE_SIZE + offset)
            asm.pad_to(_SERIES_BASE + (i + 1) * PAGE_SIZE + offset)
        asm.hlt()
        segment, _ = asm.finish()
        self.attacker.write_code(segment.base, segment.data)

    # -- per-trial steps -----------------------------------------------------

    def _train(self) -> None:
        att = self.attacker
        kind = self.train_kind
        src = self.train_src
        if kind is TrainKind.INDIRECT:
            att.train_indirect(src, _C_TARGET,
                               regs={Reg.RCX: _PROBE_DATA})
        elif kind is TrainKind.DIRECT:
            att.train_direct(src, _A_PAGE + _PCREL_TARGET_OFFSET)
        elif kind is TrainKind.CONDITIONAL:
            # Several rounds: the 2-bit direction counter must cross
            # into predicted-taken before the entry redirects fetch.
            for _ in range(3):
                att.train_cond(src, _A_PAGE + _PCREL_TARGET_OFFSET)
        elif kind is TrainKind.RETURN:
            att.train_ret(src)
            # Leave a stale RSB entry for the victim's return
            # prediction to land on (and for us to observe).
            att.seed_rsb(_RSB_SEED_CALL)
        elif kind is TrainKind.NON_BRANCH:
            att.execute_nops(src)

    def _run_victim(self) -> None:
        self.machine.run_user(self.entry, regs={Reg.RCX: _PROBE_DATA})

    def _reset_channels(self) -> None:
        self.machine.clflush(self.landing)
        self.machine.clflush(_PROBE_DATA)

    # -- channels --------------------------------------------------------------

    def measure_fetch(self) -> bool:
        """IF channel: did the landing line enter the I-cache?"""
        self._train()
        self._reset_channels()
        self._run_victim()
        return self.timer.time_exec(self.landing) < self.exec_threshold

    def measure_decode(self) -> bool:
        """ID channel: did decoding the landing evict a primed way?"""
        self._train()
        self._reset_channels()
        self.machine.run_user(self.series_entry)   # prime the µop set
        self._run_victim()
        with self.machine.cpu.pmc.sample("op_cache_miss") as sample:
            self.machine.run_user(self.series_entry)
        return sample["op_cache_miss"] > 0

    def measure_decode_with_negative_control(self) -> bool:
        """The paper's reliability refinement for the ID channel (§5.1):
        "complementary negative testing using a training branch that
        does not alias with the victim branch" — conclude ID only when
        the aliased training shows strictly more µop-cache misses than
        a non-aliasing control training.

        Only meaningful for injected (branch-trained) predictions; the
        non-branch "training" installs nothing to control against.
        """
        if self.train_kind is TrainKind.NON_BRANCH:
            raise ValueError("negative control needs a trained branch")

        def misses_with_training(src: int) -> int:
            saved = self.train_src
            self.train_src = src
            try:
                self._train()
            finally:
                self.train_src = saved
            self._reset_channels()
            self.machine.run_user(self.series_entry)
            self._run_victim()
            with self.machine.cpu.pmc.sample("op_cache_miss") as sample:
                self.machine.run_user(self.series_entry)
            return sample["op_cache_miss"]

        # Same page offset, different tag: no aliasing with the victim.
        control_src = self.train_src + 0x40_0000
        assert not self.machine.uarch.btb.collides(control_src,
                                                   self.victim_src)
        negative = misses_with_training(control_src)
        positive = misses_with_training(self.train_src)
        return positive > negative

    def measure_execute(self) -> bool:
        """EX channel: did the landing's load fill the probe line?"""
        self._train()
        self._reset_channels()
        self._run_victim()
        return self.timer.time_load(_PROBE_DATA) < self.load_threshold
