"""The paper's attacker primitives P1, P2 and P3 (§6.1).

All three share one ingredient: injecting a prediction at a *kernel*
branch source from user space by training a branch at a BTB-aliased
user address (cross-privilege aliasing, §6.2).  They differ in what the
phantom target does and how the attacker observes it:

* **P1** — detect mapped *executable* kernel memory: the phantom
  *fetch* of target T fills the I-cache only if T is mapped executable;
  observed with Prime+Probe on the instruction cache.
* **P2** — detect mapped (even non-executable) memory on Zen 1/2: the
  phantom window *executes* a disclosure gadget that loads T; observed
  with Prime+Probe on L2 (huge-page eviction sets).
* **P3** — leak a victim register byte on Zen 1/2: the gadget shifts
  the byte into a line-aligned offset and loads from a shared reload
  buffer; observed with Flush+Reload.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..params import VA_MASK
from ..sidechannel import (PrimeProbeL1I, PrimeProbeL2, ReloadBuffer, Timer)
from .attacker import AttackerRuntime


class PhantomInjector:
    """Cross-privilege BTB prediction injection (the §6.2 capability)."""

    def __init__(self, machine) -> None:
        self.machine = machine
        self.attacker = AttackerRuntime(machine)
        #: Flip pattern the reverse engineering produced (Figure 7 /
        #: the published masks); XORing a kernel source with it gives a
        #: colliding user source.
        self.alias_mask = machine.uarch.btb.kernel_alias_mask()

    def user_alias(self, kernel_src: int) -> int:
        """User-space address aliasing with *kernel_src* in the BTB."""
        return (kernel_src ^ self.alias_mask) & VA_MASK

    def inject(self, kernel_src: int, target: int) -> None:
        """Install a jmp*-kind prediction at *kernel_src* -> *target*.

        Performed by executing a real indirect branch at the aliased
        user address; the jump to *target* (usually a kernel address)
        faults architecturally and the fault is caught — the paper's
        training technique.
        """
        self.attacker.train_indirect(self.user_alias(kernel_src), target)


@dataclass
class ProbeSample:
    """One Prime+Probe measurement pair for differencing."""

    signal: int      # probe latency with the target mapping to the set
    baseline: int    # probe latency with the target mapping elsewhere


class P1MappedExecutable:
    """P1: detect mapped executable kernel memory via phantom fetch."""

    def __init__(self, machine, injector: PhantomInjector | None = None,
                 pp: PrimeProbeL1I | None = None) -> None:
        self.machine = machine
        self.injector = injector or PhantomInjector(machine)
        self.pp = pp or PrimeProbeL1I(machine)

    @staticmethod
    def l1i_set_of(va: int) -> int:
        return (va >> 6) & 63

    def probe_once(self, kernel_src: int, target: int,
                   run_victim) -> int:
        """prime -> inject -> victim -> probe; returns probe latency."""
        set_index = self.l1i_set_of(target)
        self.pp.prime(set_index)
        self.injector.inject(kernel_src, target)
        run_victim()
        return self.pp.probe(set_index)

    def sample(self, kernel_src: int, target: int, run_victim,
               *, off_set_distance: int = 32) -> ProbeSample:
        """Differenced measurement (§7.3) in units of evicted lines:
        the baseline run injects a target mapping to an unrelated
        I-cache set but probes the same set, cancelling systematic
        syscall thrash.  Per-line miss counting is far more robust
        against timer jitter than summed latencies."""
        set_index = self.l1i_set_of(target)
        self.pp.prime(set_index)
        self.injector.inject(kernel_src, target)
        run_victim()
        signal = self.pp.probe_misses(set_index)
        off_target = target ^ (off_set_distance << 6)
        self.pp.prime(set_index)
        self.injector.inject(kernel_src, off_target)
        run_victim()
        baseline = self.pp.probe_misses(set_index)
        return ProbeSample(signal=signal, baseline=baseline)


class P2MappedMemory:
    """P2: detect mapped kernel memory via a phantom-window load.

    Requires a µarch whose phantom window reaches execute (Zen 1/2) and
    a disclosure gadget in the victim's address space (Listing 3); the
    victim syscall must place the attacker-controlled pointer in the
    gadget's register (readv: RSI -> R12, §7.2).
    """

    GADGET_DISPLACEMENT = 0xBE0   # Listing 3 loads [r12 + 0xbe0]

    def __init__(self, machine, injector: PhantomInjector | None = None,
                 pp: PrimeProbeL2 | None = None) -> None:
        self.machine = machine
        self.injector = injector or PhantomInjector(machine)
        self.pp = pp or PrimeProbeL2(machine)

    def probe_once(self, call_site: int, gadget: int, target: int,
                   l2_set: int, run_victim) -> int:
        """prime -> inject(call_site -> gadget) -> victim(target) -> probe."""
        self.pp.prime(l2_set)
        self.injector.inject(call_site, gadget)
        run_victim(target - self.GADGET_DISPLACEMENT)
        return self.pp.probe(l2_set)


class P3RegisterLeak:
    """P3: leak a byte of a victim register through a shifted load.

    The disclosure gadget arranges the byte into bits [13:6] (a
    line-aligned offset) and loads from the reload buffer; Flush+Reload
    recovers the byte.
    """

    def __init__(self, machine, injector: PhantomInjector | None = None,
                 reload_buffer: ReloadBuffer | None = None) -> None:
        self.machine = machine
        self.injector = injector or PhantomInjector(machine)
        self.reload = reload_buffer or ReloadBuffer(machine)

    def leak_byte(self, branch_site: int, gadget: int, run_victim,
                  *, retries: int = 3) -> int | None:
        """Inject gadget at branch_site, run the victim, F+R the byte."""
        def trigger():
            self.injector.inject(branch_site, gadget)
            run_victim()

        return self.reload.leak_byte(trigger, retries=retries)
