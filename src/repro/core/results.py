"""The common Result interface every experiment outcome implements.

Each experiment's result dataclass (:class:`~repro.core.matrix.CellResult`,
:class:`~repro.core.covert.CovertResult`,
:class:`~repro.core.kaslr_image.KaslrImageResult`,
:class:`~repro.core.kaslr_physmap.PhysmapResult`,
:class:`~repro.core.physaddr.PhysAddrResult`,
:class:`~repro.core.mds.MdsLeakResult`) provides:

* ``to_dict()`` — a flat, JSON-safe dict of the result's headline
  numbers.  This is the *single* serialization consumed by run
  manifests (the CLI ``--json`` path), ``repro stats`` summaries, and
  campaign reducers — experiment-specific serialization code does not
  belong anywhere else.  Addresses render as hex strings; raw payloads
  (leaked bytes, per-candidate scores) are summarized, not dumped.
* ``summary()`` — one human line with the same numbers, for CLI text
  output and logs.

:func:`hexaddr` is the one formatting rule shared by all of them.
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable


@runtime_checkable
class Result(Protocol):
    """Structural interface of every experiment result."""

    def to_dict(self) -> dict:
        """Flat, JSON-serializable view of the result."""
        ...   # pragma: no cover

    def summary(self) -> str:
        """One human-readable line."""
        ...   # pragma: no cover


def hexaddr(value: int | None) -> str | None:
    """Addresses in manifests are hex strings; absent ones stay None."""
    return None if value is None else f"{value:#x}"
