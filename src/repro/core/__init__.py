"""Phantom core: observation channels, primitives, exploits."""

from .attacker import AttackerRuntime
from .covert import CovertResult, execute_covert_channel, fetch_covert_channel
from .kaslr_image import KaslrImageResult, break_kernel_image_kaslr
from .kaslr_physmap import PhysmapResult, break_physmap_kaslr
from .matrix import (ASYMMETRIC_COMBOS, CellResult, format_matrix,
                     measure_cell, run_matrix)
from .mds import MdsLeakResult, leak_kernel_memory
from .observe import (ExperimentResult, TrainKind, TypeConfusionExperiment,
                      VictimKind)
from .physaddr import PhysAddrResult, find_physical_address
from .primitives import (P1MappedExecutable, P2MappedMemory, P3RegisterLeak,
                         PhantomInjector)
from .scoring import (GuessScore, best_guess, bounded_difference,
                      bounded_score, score_margin)

__all__ = [
    "ASYMMETRIC_COMBOS",
    "AttackerRuntime",
    "CellResult",
    "CovertResult",
    "ExperimentResult",
    "GuessScore",
    "KaslrImageResult",
    "MdsLeakResult",
    "P1MappedExecutable",
    "P2MappedMemory",
    "P3RegisterLeak",
    "PhantomInjector",
    "PhysAddrResult",
    "PhysmapResult",
    "TrainKind",
    "TypeConfusionExperiment",
    "VictimKind",
    "best_guess",
    "bounded_difference",
    "bounded_score",
    "break_kernel_image_kaslr",
    "break_physmap_kaslr",
    "execute_covert_channel",
    "fetch_covert_channel",
    "find_physical_address",
    "format_matrix",
    "leak_kernel_memory",
    "measure_cell",
    "run_matrix",
    "score_margin",
]
