"""Phantom core: observation channels, primitives, exploits."""

from .attacker import AttackerRuntime
from .covert import (CovertExperiment, CovertResult, execute_covert_channel,
                     fetch_covert_channel)
from .experiment import Experiment, chunked, values
from .kaslr_image import (KaslrImageExperiment, KaslrImageResult,
                          break_kernel_image_kaslr)
from .kaslr_physmap import (PhysmapExperiment, PhysmapResult,
                            break_physmap_kaslr)
from .matrix import (ASYMMETRIC_COMBOS, CHANNELS, CellResult,
                     MatrixExperiment, format_matrix, measure_cell,
                     measure_channel, run_matrix)
from .mds import MdsLeakExperiment, MdsLeakResult, leak_kernel_memory
from .observe import (ExperimentResult, TrainKind, TypeConfusionExperiment,
                      VictimKind)
from .physaddr import (PhysAddrExperiment, PhysAddrResult,
                       find_physical_address)
from .primitives import (P1MappedExecutable, P2MappedMemory, P3RegisterLeak,
                         PhantomInjector)
from .results import Result, hexaddr
from .scoring import (GuessScore, best_guess, bounded_difference,
                      bounded_score, score_margin)

__all__ = [
    "ASYMMETRIC_COMBOS",
    "AttackerRuntime",
    "CHANNELS",
    "CellResult",
    "CovertExperiment",
    "CovertResult",
    "Experiment",
    "ExperimentResult",
    "GuessScore",
    "KaslrImageExperiment",
    "KaslrImageResult",
    "MatrixExperiment",
    "MdsLeakExperiment",
    "MdsLeakResult",
    "P1MappedExecutable",
    "P2MappedMemory",
    "P3RegisterLeak",
    "PhantomInjector",
    "PhysAddrExperiment",
    "PhysAddrResult",
    "PhysmapExperiment",
    "PhysmapResult",
    "Result",
    "TrainKind",
    "TypeConfusionExperiment",
    "VictimKind",
    "best_guess",
    "bounded_difference",
    "bounded_score",
    "break_kernel_image_kaslr",
    "break_physmap_kaslr",
    "chunked",
    "execute_covert_channel",
    "fetch_covert_channel",
    "find_physical_address",
    "format_matrix",
    "hexaddr",
    "leak_kernel_memory",
    "measure_cell",
    "measure_channel",
    "run_matrix",
    "score_margin",
    "values",
]
