"""The common Experiment protocol every campaign implements.

An experiment is three pure-ish pieces the runner can schedule
uniformly:

* ``job_specs()`` — decompose the campaign into declarative
  :class:`repro.runner.JobSpec`\\ s.  The decomposition must depend only
  on the campaign's own parameters (never on ``--jobs``), and any
  randomness must come from :func:`repro.runner.derive_seed` — together
  these make results byte-identical at any worker count.
* ``run_one(spec, ctx)`` — execute one job on a fresh machine booted
  through ``ctx.boot(spec.machine)`` (so the runner can account cycles
  and PMCs), returning a picklable value.
* ``reduce(results)`` — fold the ordered :class:`repro.runner.JobResult`
  list into the campaign's domain result, skipping failed jobs.

Experiment objects themselves cross the process-pool boundary, so they
must be picklable: frozen dataclasses of names, numbers and other
frozen specs (µarches by *name*, machines as
:class:`repro.kernel.MachineSpec`).

Implementations live next to the physics they drive:
:class:`repro.core.matrix.MatrixExperiment`,
:class:`repro.core.covert.CovertExperiment`,
:class:`repro.core.kaslr_image.KaslrImageExperiment`,
:class:`repro.core.kaslr_physmap.PhysmapExperiment`,
:class:`repro.core.physaddr.PhysAddrExperiment`,
:class:`repro.core.mds.MdsLeakExperiment`, and
:class:`repro.workloads.suite.SuiteExperiment`.
"""

from __future__ import annotations

from typing import Any, Iterator, Protocol, Sequence, runtime_checkable

from ..runner import JobContext, JobResult, JobSpec


@runtime_checkable
class Experiment(Protocol):
    """What the campaign runner needs from an experiment."""

    name: str

    def job_specs(self) -> Sequence[JobSpec]:
        """The campaign's jobs, in reduce order."""
        ...   # pragma: no cover

    def run_one(self, spec: JobSpec, ctx: JobContext) -> Any:
        """Execute one job; runs in a worker process."""
        ...   # pragma: no cover

    def reduce(self, results: Sequence[JobResult]) -> Any:
        """Fold ordered job results into the campaign result."""
        ...   # pragma: no cover


def chunked(n_items: int, chunk_size: int) -> Iterator[tuple[int, int, int]]:
    """Yield ``(chunk_index, start, stop)`` covering ``range(n_items)``.

    The fixed *chunk_size* is what keeps a campaign's decomposition
    independent of the worker count.
    """
    if chunk_size <= 0:
        raise ValueError(f"chunk_size must be positive, got {chunk_size}")
    for index, start in enumerate(range(0, n_items, chunk_size)):
        yield index, start, min(start + chunk_size, n_items)


def values(results: Sequence[JobResult]) -> list:
    """The successful results' values, in job order."""
    return [r.value for r in results if r.ok]
