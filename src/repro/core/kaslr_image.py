"""Exploit 1: derandomizing kernel-image KASLR with P1 (paper §7.1).

For each of the 488 possible image locations, inject a jmp* prediction
at where ``__task_pid_nr_ns``'s ``nop`` would be if the guess were
right (Listing 1, image offset 0xf6520), with a target inside the
guessed image that maps to a chosen I-cache set.  ``getpid()`` then
triggers the phantom fetch only for the correct guess, and only there
the target is mapped executable — Prime+Probe sees the set fill.

Noise is handled with §7.3's bounded multi-set differencing, optionally
amplified by injecting a second speculative branch along the same
syscall path (the ``h_getpid`` dispatcher call).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import ClassVar

from ..kernel import Kaslr, MachineSpec, SYS_GETPID
from ..kernel.layout import reference_offsets
from ..runner import JobContext, JobSpec, derive_seed
from .experiment import chunked
from .primitives import P1MappedExecutable, PhantomInjector
from .results import hexaddr
from .scoring import GuessScore, best_guess, bounded_difference, score_margin

#: Image-relative region used for probe targets (mapped, executable,
#: and clear of the code the syscall path itself touches).
TARGET_REGION_OFFSET = 0x20_0000


@dataclass
class KaslrImageResult:
    """Outcome of one derandomization run."""

    guessed_base: int
    seconds: float
    scores: list[GuessScore]

    def correct(self, kaslr: Kaslr) -> bool:
        return self.guessed_base == kaslr.image_base

    def to_dict(self) -> dict:
        return {"guessed_base": hexaddr(self.guessed_base),
                "candidates_scored": len(self.scores),
                "score_margin": score_margin(self.scores),
                "simulated_ms": self.seconds * 1000}

    def summary(self) -> str:
        return (f"guessed image base {self.guessed_base:#x} from "
                f"{len(self.scores)} candidates in "
                f"{self.seconds * 1000:.2f} simulated ms")


def _probe_set_difference(p1: P1MappedExecutable, injector: PhantomInjector,
                          machine, candidate: int, offsets: dict,
                          set_index: int, *, amplify: bool,
                          repeats: int) -> int:
    """Median over *repeats* of (T_S - B_S) for one candidate and set.

    The median defeats the sporadic syscall-path thrash that makes
    single-shot L1I Prime+Probe unreliable (§7.3).
    """
    from statistics import median

    nopl_site = candidate + offsets["__task_pid_nr_ns"]
    call_site = candidate + offsets["h_getpid"]

    def measure(target_set: int) -> int:
        target = candidate + TARGET_REGION_OFFSET + target_set * 64
        p1.pp.prime(set_index)
        injector.inject(nopl_site, target)
        if amplify:
            # A second speculative branch along the execution path of
            # the system call, to an additional target mapped to S.
            injector.inject(call_site,
                            target + 0x1000)  # same set, next page
        machine.syscall(SYS_GETPID)
        return p1.pp.probe_misses(set_index)

    diffs = [measure(set_index) - measure(set_index ^ 32)
             for _ in range(repeats)]
    return round(median(diffs))


def break_kernel_image_kaslr(machine, *, sets: tuple[int, ...] = (44, 52),
                             bound: int = 10, repeats: int = 3,
                             amplify: bool = True,
                             candidates=None) -> KaslrImageResult:
    """Run the §7.1 exploit; returns the guessed image base.

    *candidates* restricts the scan (the parallel campaign hands each
    job one chunk of the 488 slots); the default scans them all.
    """
    injector = PhantomInjector(machine)
    p1 = P1MappedExecutable(machine, injector=injector)
    offsets = reference_offsets()
    start = machine.seconds()
    if candidates is None:
        candidates = Kaslr.image_candidates()

    scores: list[GuessScore] = []
    for candidate in candidates:
        total = 0
        for set_index in sets:
            diff = _probe_set_difference(
                p1, injector, machine, candidate, offsets, set_index,
                amplify=amplify, repeats=repeats)
            total += bounded_difference(diff, 0, bound=bound)
        scores.append(GuessScore(candidate, total))

    winner = best_guess(scores)
    return KaslrImageResult(guessed_base=winner.guess,
                            seconds=machine.seconds() - start,
                            scores=scores)


@dataclass(frozen=True)
class KaslrImageExperiment:
    """The §7.1 campaign: the 488 candidate slots in fixed chunks.

    Each chunk is scored on a fresh machine booted from the same
    :class:`MachineSpec` (same ``kaslr_seed`` — same layout to attack),
    so chunk scores are comparable; the reduce step concatenates them
    and picks the global best guess.
    """

    name: ClassVar[str] = "kaslr-image"

    machine: MachineSpec
    sets: tuple[int, ...] = (44, 52)
    bound: int = 10
    repeats: int = 3
    amplify: bool = True
    chunk_candidates: int = 61          # 488 slots -> 8 equal chunks

    def campaign_config(self) -> dict:
        return {"uarch": self.machine.uarch,
                "kaslr_seed": self.machine.kaslr_seed,
                "candidates": len(Kaslr.image_candidates())}

    def job_specs(self) -> list[JobSpec]:
        total = len(Kaslr.image_candidates())
        return [JobSpec.make(self.name, (index,),
                             derive_seed(self.machine.kaslr_seed, (index,)),
                             machine=self.machine, start=start, stop=stop)
                for index, start, stop in chunked(total,
                                                  self.chunk_candidates)]

    def run_one(self, spec: JobSpec, ctx: JobContext) -> KaslrImageResult:
        machine = ctx.boot(spec.machine)
        chunk = Kaslr.image_candidates()[spec.param("start"):
                                         spec.param("stop")]
        return break_kernel_image_kaslr(
            machine, sets=self.sets, bound=self.bound,
            repeats=self.repeats, amplify=self.amplify, candidates=chunk)

    def reduce(self, results) -> KaslrImageResult:
        scores: list[GuessScore] = []
        seconds = 0.0
        for result in results:
            if result.ok:
                scores.extend(result.value.scores)
                seconds += result.value.seconds
        winner = best_guess(scores)
        return KaslrImageResult(guessed_base=winner.guess,
                                seconds=seconds, scores=scores)
