"""Kernel-to-user covert channels over P1 and P2 (paper §6.4, Table 2).

A kernel module performs direct branches; the attacker hijacks one
with an injected jmp* prediction.  Two channel variants:

* **fetch** (all Zen): the injected target T_b is a mapped (b=1) or
  unmapped (b=0) kernel address mapping to a chosen I-cache set;
  Prime+Probe on that set reads the bit.
* **execute** (Zen 1/2 only): the injected target is a kernel load
  gadget dereferencing RDI; the attacker passes a kernel pointer whose
  physical line maps to a chosen (b=1) or different (b=0) D-cache set.

This is a controlled channel-capacity experiment: module and kernel
addresses are known, as in the paper's setup.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import ClassVar

from ..kernel import KERNEL_IMAGE_REGION, MachineSpec, SYS_COVERT
from ..runner import JobContext, JobSpec, derive_seed
from ..sidechannel import PrimeProbeL1D, PrimeProbeL1I
from .primitives import PhantomInjector

#: I-cache / D-cache set used for the "1" symbol.
CHANNEL_SET = 37
#: Image-relative offset region for mapped fetch targets.
FETCH_TARGET_OFFSET = 0x30_0000
#: An unmapped kernel address region (below the KASLR range).
UNMAPPED_KERNEL = KERNEL_IMAGE_REGION - 0x4000_0000


@dataclass
class CovertResult:
    """Accuracy and rate of one covert-channel run (Table 2 row)."""

    bits: int
    correct: int
    seconds: float

    @property
    def accuracy(self) -> float:
        return self.correct / self.bits

    @property
    def bits_per_second(self) -> float:
        return self.bits / self.seconds if self.seconds else float("inf")

    def to_dict(self) -> dict:
        return {"bits": self.bits, "correct": self.correct,
                "accuracy": self.accuracy,
                "bits_per_second": self.bits_per_second,
                "simulated_seconds": self.seconds}

    def summary(self) -> str:
        return (f"{self.bits} bits, accuracy {self.accuracy * 100:.2f}%, "
                f"{self.bits_per_second:,.0f} bits/s simulated")


@dataclass(frozen=True)
class CovertExperiment:
    """A Table 2 campaign: *n_bits* sharded into fixed-size chunks.

    Each chunk transmits on a fresh machine (bit patterns come from
    :func:`repro.runner.derive_seed` over the chunk key, so the stream
    is the same at any ``--jobs``); the reduce step sums bits, correct
    receptions and simulated transmit time into one
    :class:`CovertResult`.
    """

    name: ClassVar[str] = "covert"

    machine: MachineSpec
    channel: str = "fetch"              # "fetch" | "execute"
    n_bits: int = 4096
    seed: int = 1
    chunk_bits: int = 512               # fixed: never depends on --jobs

    def campaign_config(self) -> dict:
        return {"channel": self.channel, "n_bits": self.n_bits,
                "seed": self.seed, "uarch": self.machine.uarch}

    def job_specs(self) -> list[JobSpec]:
        if self.channel not in ("fetch", "execute"):
            raise ValueError(f"unknown covert channel {self.channel!r}; "
                             f"expected 'fetch' or 'execute'")
        specs = []
        n_chunks = max(1, math.ceil(self.n_bits / self.chunk_bits))
        for index in range(n_chunks):
            bits = min(self.chunk_bits,
                       self.n_bits - index * self.chunk_bits)
            key = (self.channel, index)
            specs.append(JobSpec.make(
                self.name, key, derive_seed(self.seed, key),
                machine=self.machine, bits=bits))
        return specs

    def run_one(self, spec: JobSpec, ctx: JobContext) -> CovertResult:
        transmit = (fetch_covert_channel if self.channel == "fetch"
                    else execute_covert_channel)
        machine = ctx.boot(spec.machine)
        return transmit(machine, n_bits=spec.param("bits"), seed=spec.seed)

    def reduce(self, results) -> CovertResult:
        chunks = [r.value for r in results if r.ok]
        return CovertResult(bits=sum(c.bits for c in chunks),
                            correct=sum(c.correct for c in chunks),
                            seconds=sum(c.seconds for c in chunks))


def fetch_covert_channel(machine, *, n_bits: int = 4096,
                         seed: int = 1) -> CovertResult:
    """Table 2 (top): transmit random bits via phantom *fetch*."""
    rng = random.Random(seed)
    injector = PhantomInjector(machine)
    pp = PrimeProbeL1I(machine)
    branch = machine.modules.sym("covert_branch_0")
    t1 = (machine.kaslr.image_base + FETCH_TARGET_OFFSET
          + CHANNEL_SET * 64)
    t0 = UNMAPPED_KERNEL + CHANNEL_SET * 64

    sent = [rng.randrange(2) for _ in range(n_bits)]
    start = machine.seconds()
    correct = 0
    for bit in sent:
        pp.prime(CHANNEL_SET)
        injector.inject(branch, t1 if bit else t0)
        machine.syscall(SYS_COVERT)
        received = int(pp.probe_misses(CHANNEL_SET) > 0)
        correct += received == bit
    return CovertResult(bits=n_bits, correct=correct,
                        seconds=machine.seconds() - start)


def execute_covert_channel(machine, *, n_bits: int = 4096,
                           seed: int = 2) -> CovertResult:
    """Table 2 (bottom): transmit random bits via phantom *execute*.

    Requires a phantom window that reaches execute (Zen 1/2).
    """
    if not machine.uarch.phantom_reaches_execute:
        raise ValueError(f"{machine.uarch.name}: no phantom execute window")
    rng = random.Random(seed)
    injector = PhantomInjector(machine)
    pp = PrimeProbeL1D(machine)
    branch = machine.modules.sym("covert_branch_0")
    gadget = machine.modules.sym("covert_load_gadget")
    physmap = machine.kaslr.physmap_base
    # Physical lines whose D-cache sets encode the symbol.
    ptr1 = physmap + 0x10_0000 + CHANNEL_SET * 64
    ptr0 = physmap + 0x10_0000 + (CHANNEL_SET ^ 32) * 64

    sent = [rng.randrange(2) for _ in range(n_bits)]
    start = machine.seconds()
    correct = 0
    for bit in sent:
        pp.prime(CHANNEL_SET)
        injector.inject(branch, gadget)
        machine.syscall(SYS_COVERT, ptr1 if bit else ptr0)
        received = int(pp.probe_misses(CHANNEL_SET) > 0)
        correct += received == bit
    return CovertResult(bits=n_bits, correct=correct,
                        seconds=machine.seconds() - start)
