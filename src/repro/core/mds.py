"""Exploit 3: leaking kernel memory through an MDS gadget (paper §7.4).

An MDS gadget (Listing 4) performs only *one* attacker-controlled load
— useless to conventional Spectre, which needs a second,
secret-dependent load for the cache transmission.  P3 supplies that
second load: nested inside the bounds-check misprediction window, a
phantom prediction injected at the gadget's ``call parse_data`` sends
the frontend to a disclosure gadget that shifts the just-loaded byte
into a line offset and loads from the attacker's reload buffer
(shared with the kernel through physmap).  Flush+Reload reads the byte.

Preconditions (all obtainable with the previous exploits, §7.4): the
kernel image base, the physmap base, the physical address of the reload
buffer, and the gadget/array addresses (module layout is public).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import ClassVar

from ..kernel import MachineSpec, SYS_MDS
from ..kernel.layout import IMAGE_SIZE
from ..runner import JobContext, JobSpec, derive_seed
from ..sidechannel import ReloadBuffer
from .experiment import chunked
from .primitives import P3RegisterLeak, PhantomInjector


@dataclass
class MdsLeakResult:
    """Outcome of one kernel-memory leak run."""

    leaked: bytes
    expected: bytes
    seconds: float
    no_signal_bytes: int

    @property
    def accuracy(self) -> float:
        if not self.leaked:
            return 0.0
        good = sum(a == b for a, b in zip(self.leaked, self.expected))
        return good / len(self.expected)

    @property
    def bytes_per_second(self) -> float:
        return (len(self.leaked) / self.seconds if self.seconds
                else float("inf"))

    @property
    def signal(self) -> bool:
        """Did the run produce any signal at all (paper: 8 of 10 did)?"""
        return self.no_signal_bytes < len(self.expected)

    def to_dict(self) -> dict:
        return {"bytes": len(self.leaked), "accuracy": self.accuracy,
                "bytes_per_second": self.bytes_per_second,
                "no_signal_bytes": self.no_signal_bytes,
                "signal": self.signal,
                "simulated_seconds": self.seconds}

    def summary(self) -> str:
        return (f"leaked {len(self.leaked)} bytes, accuracy "
                f"{self.accuracy * 100:.2f}%, "
                f"{self.bytes_per_second:,.0f} bytes/s simulated")


def leak_kernel_memory(machine, image_base: int, physmap_base: int, *,
                       n_bytes: int = 4096, start_offset: int = 0,
                       reload_buffer: ReloadBuffer | None = None,
                       reload_pa: int | None = None) -> MdsLeakResult:
    """Leak *n_bytes* of the kernel's secret region via the MDS gadget.

    ``reload_pa`` is the physical address of the reload buffer — found
    with :func:`repro.core.physaddr.find_physical_address` in the full
    chain; passing it explicitly lets benches isolate this stage.
    """
    if not machine.uarch.phantom_reaches_execute:
        raise ValueError(f"{machine.uarch.name}: P3 requires Zen 1/2")
    injector = PhantomInjector(machine)
    reload = reload_buffer or ReloadBuffer(machine)
    if reload_pa is None:
        reload_pa = machine.mem.aspace.translate_noperm(reload.va)
    reload_kva = physmap_base + reload_pa

    p3 = P3RegisterLeak(machine, injector=injector, reload_buffer=reload)
    call_site = machine.modules.sym("mds_call_site")
    gadget = machine.modules.sym("p3_gadget")
    array_va = machine.data_base + 0x40
    secret_va = machine.secret_va + start_offset

    def condition() -> None:
        # In-bounds calls keep the bounds check predicted toward the
        # load path; every out-of-bounds (taken) attack call pushes the
        # counter the other way, so conditioning must interleave with
        # the attack calls (standard Spectre-v1 discipline).  Their
        # phantom side effects land before the flush, so they cannot
        # pollute the reload measurement.
        for _ in range(2):
            machine.syscall(SYS_MDS, 1, reload_kva)

    start = machine.seconds()
    leaked = bytearray()
    no_signal = 0
    for i in range(n_bytes):
        user_index = (secret_va + i - array_va) & ((1 << 64) - 1)
        byte = None
        for _ in range(3):
            condition()
            byte = p3.leak_byte(
                call_site, gadget,
                lambda: machine.syscall(SYS_MDS, user_index, reload_kva),
                retries=1)
            if byte is not None:
                break
        if byte is None:
            no_signal += 1
            byte = 0
        leaked.append(byte)

    expected = machine.secret_bytes()[start_offset:start_offset + n_bytes]
    return MdsLeakResult(leaked=bytes(leaked), expected=expected,
                         seconds=machine.seconds() - start,
                         no_signal_bytes=no_signal)


@dataclass(frozen=True)
class MdsLeakExperiment:
    """The §7.4 campaign: the secret region in fixed byte ranges.

    Each chunk leaks one contiguous range on a fresh machine (identical
    machines hold identical secrets, so the ranges concatenate into the
    stream the serial leak produces).  Results arrive in spec order, so
    the reduce step stitches ``leaked``/``expected`` back together by
    simple concatenation.
    """

    name: ClassVar[str] = "mds-leak"

    machine: MachineSpec
    image_base: int
    physmap_base: int
    n_bytes: int = 4096
    start_offset: int = 0
    chunk_bytes: int = 1024             # fixed: never depends on --jobs

    def campaign_config(self) -> dict:
        return {"uarch": self.machine.uarch,
                "kaslr_seed": self.machine.kaslr_seed,
                "n_bytes": self.n_bytes,
                "start_offset": self.start_offset}

    def job_specs(self) -> list[JobSpec]:
        return [JobSpec.make(self.name, (index,),
                             derive_seed(self.machine.kaslr_seed, (index,)),
                             machine=self.machine, start=start, stop=stop)
                for index, start, stop in chunked(self.n_bytes,
                                                  self.chunk_bytes)]

    def run_one(self, spec: JobSpec, ctx: JobContext) -> MdsLeakResult:
        machine = ctx.boot(spec.machine)
        start, stop = spec.param("start"), spec.param("stop")
        return leak_kernel_memory(
            machine, self.image_base, self.physmap_base,
            n_bytes=stop - start,
            start_offset=self.start_offset + start)

    def reduce(self, results) -> MdsLeakResult:
        chunks = [r.value for r in results if r.ok]
        return MdsLeakResult(
            leaked=b"".join(c.leaked for c in chunks),
            expected=b"".join(c.expected for c in chunks),
            seconds=sum(c.seconds for c in chunks),
            no_signal_bytes=sum(c.no_signal_bytes for c in chunks))
