"""Table 1: the training x victim type-confusion matrix.

For every asymmetric combination of training and victim instruction
(20 cross-type pairs plus the two same-type different-displacement
variants = 22), measure through the observation channels how far the
mispredicted target advances: IF, ID or EX.

Every channel measurement uses a fresh machine, mirroring the paper's
fresh victim processes: otherwise a branch victim's own architectural
execution would train a correct prediction and mask the phantom.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..kernel import DEFAULT_MITIGATIONS, Machine, MitigationConfig
from ..pipeline import Microarch, Reach
from .observe import (ExperimentResult, TrainKind, TypeConfusionExperiment,
                      VictimKind)

#: The 22 combinations of Table 1 (asymmetric pairs + displacement
#: variants for jmp and jcc).
ASYMMETRIC_COMBOS: tuple[tuple[TrainKind, VictimKind], ...] = tuple(
    (t, v) for t in TrainKind for v in VictimKind
    if t.value != v.value
) + ((TrainKind.DIRECT, VictimKind.DIRECT),
     (TrainKind.CONDITIONAL, VictimKind.CONDITIONAL))


@dataclass
class CellResult:
    """Measured reach for one (train, victim) cell on one µarch."""

    uarch: str
    train: TrainKind
    victim: VictimKind
    result: ExperimentResult

    @property
    def reach(self) -> Reach:
        return self.result.reach


def measure_cell(uarch: Microarch, train_kind: TrainKind,
                 victim_kind: VictimKind, *, seed: int = 0,
                 mitigations: MitigationConfig = DEFAULT_MITIGATIONS
                 ) -> ExperimentResult:
    """Measure one cell; fresh machine per channel (see module doc)."""
    outcomes = {}
    for channel in ("fetch", "decode", "execute"):
        machine = Machine(uarch, kaslr_seed=seed, rng_seed=seed,
                          mitigations=mitigations,
                          syscall_noise_evictions=0)
        experiment = TypeConfusionExperiment(machine, train_kind,
                                             victim_kind)
        outcomes[channel] = getattr(experiment, f"measure_{channel}")()
    return ExperimentResult(**outcomes)


def run_matrix(uarches, *, combos=ASYMMETRIC_COMBOS, seed: int = 0,
               mitigations: MitigationConfig = DEFAULT_MITIGATIONS
               ) -> list[CellResult]:
    """Run the full Table 1 experiment over *uarches*."""
    results = []
    for uarch in uarches:
        for train_kind, victim_kind in combos:
            result = measure_cell(uarch, train_kind, victim_kind,
                                  seed=seed, mitigations=mitigations)
            results.append(CellResult(uarch.name, train_kind, victim_kind,
                                      result))
    return results


_REACH_GLYPH = {
    Reach.NONE: "-",
    Reach.FETCH: "IF",
    Reach.DECODE: "ID",
    Reach.EXECUTE: "EX",
}


def format_matrix(results: list[CellResult]) -> str:
    """Render the matrix the way Table 1 does, one block per µarch."""
    lines = []
    uarches = sorted({r.uarch for r in results})
    trains = list(TrainKind)
    victims = list(VictimKind)
    for uarch in uarches:
        cells = {(r.train, r.victim): r.reach
                 for r in results if r.uarch == uarch}
        lines.append(f"=== {uarch} ===")
        header = "train \\ victim".ljust(16) + "".join(
            v.value.ljust(12) for v in victims)
        lines.append(header)
        for train in trains:
            row = [train.value.ljust(16)]
            for victim in victims:
                reach = cells.get((train, victim))
                row.append(("." if reach is None
                            else _REACH_GLYPH[reach]).ljust(12))
            lines.append("".join(row))
        lines.append("")
    return "\n".join(lines)
