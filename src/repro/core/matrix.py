"""Table 1: the training x victim type-confusion matrix.

For every asymmetric combination of training and victim instruction
(20 cross-type pairs plus the two same-type different-displacement
variants = 22), measure through the observation channels how far the
mispredicted target advances: IF, ID or EX.

Every channel measurement uses a fresh machine, mirroring the paper's
fresh victim processes: otherwise a branch victim's own architectural
execution would train a correct prediction and mask the phantom.
Fresh machines also make every cell an independent job: the matrix is
a campaign of :class:`MatrixExperiment` jobs the parallel runner
(:mod:`repro.runner`) shards across worker processes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, ClassVar

from ..kernel import DEFAULT_MITIGATIONS, MachineSpec, MitigationConfig
from ..pipeline import Microarch, Reach
from ..runner import JobContext, JobSpec, run_campaign
from .observe import (ExperimentResult, TrainKind, TypeConfusionExperiment,
                      VictimKind)

#: The 22 combinations of Table 1 (asymmetric pairs + displacement
#: variants for jmp and jcc).
ASYMMETRIC_COMBOS: tuple[tuple[TrainKind, VictimKind], ...] = tuple(
    (t, v) for t in TrainKind for v in VictimKind
    if t.value != v.value
) + ((TrainKind.DIRECT, VictimKind.DIRECT),
     (TrainKind.CONDITIONAL, VictimKind.CONDITIONAL))

#: Explicit channel -> measurement dispatch (no stringly ``getattr``):
#: an unknown channel fails loudly instead of resolving to whatever
#: attribute happens to match.
CHANNEL_MEASUREMENTS: dict[
    str, Callable[[TypeConfusionExperiment], bool]] = {
    "fetch": TypeConfusionExperiment.measure_fetch,
    "decode": TypeConfusionExperiment.measure_decode,
    "execute": TypeConfusionExperiment.measure_execute,
}

#: Channel order of one cell measurement (ExperimentResult field order).
CHANNELS: tuple[str, ...] = ("fetch", "decode", "execute")


def measure_channel(experiment: TypeConfusionExperiment,
                    channel: str) -> bool:
    """Run one observation channel by name."""
    try:
        measure = CHANNEL_MEASUREMENTS[channel]
    except KeyError:
        raise ValueError(
            f"unknown observation channel {channel!r}; expected one of "
            f"{', '.join(sorted(CHANNEL_MEASUREMENTS))}") from None
    return measure(experiment)


@dataclass
class CellResult:
    """Measured reach for one (train, victim) cell on one µarch."""

    uarch: str
    train: TrainKind
    victim: VictimKind
    result: ExperimentResult

    @property
    def reach(self) -> Reach:
        return self.result.reach

    def to_dict(self) -> dict:
        return {"uarch": self.uarch, "train": self.train.value,
                "victim": self.victim.value, "fetch": self.result.fetch,
                "decode": self.result.decode,
                "execute": self.result.execute, "reach": self.reach.name}

    def summary(self) -> str:
        return (f"{self.uarch}: {self.train.value} x {self.victim.value} "
                f"-> {self.reach.name}")


@dataclass(frozen=True)
class MatrixExperiment:
    """The Table 1 campaign: one job per (µarch, train, victim) cell."""

    name: ClassVar[str] = "matrix"

    uarches: tuple[str, ...]
    combos: tuple[tuple[TrainKind, VictimKind], ...] = ASYMMETRIC_COMBOS
    seed: int = 0
    mitigations: MitigationConfig = DEFAULT_MITIGATIONS

    def campaign_config(self) -> dict:
        return {"uarches": list(self.uarches), "seed": self.seed,
                "combos": len(self.combos)}

    def job_specs(self) -> list[JobSpec]:
        specs = []
        for uarch in self.uarches:
            machine = MachineSpec(uarch=uarch, kaslr_seed=self.seed,
                                  rng_seed=self.seed,
                                  mitigations=self.mitigations,
                                  syscall_noise_evictions=0)
            for train, victim in self.combos:
                specs.append(JobSpec.make(
                    self.name, (uarch, train.value, victim.value),
                    self.seed, machine=machine,
                    train=train.name, victim=victim.name))
        return specs

    def run_one(self, spec: JobSpec, ctx: JobContext) -> CellResult:
        train = TrainKind[spec.param("train")]
        victim = VictimKind[spec.param("victim")]
        outcomes = {}
        for channel in CHANNELS:
            with ctx.span(f"measure:{channel}"):
                machine = ctx.boot(spec.machine)
                experiment = TypeConfusionExperiment(machine, train, victim)
                outcomes[channel] = measure_channel(experiment, channel)
        return CellResult(spec.key[0], train, victim,
                          ExperimentResult(**outcomes))

    def reduce(self, results) -> list[CellResult]:
        return [r.value for r in results if r.ok]


def measure_cell(uarch: Microarch, train_kind: TrainKind,
                 victim_kind: VictimKind, *, seed: int = 0,
                 mitigations: MitigationConfig = DEFAULT_MITIGATIONS
                 ) -> ExperimentResult:
    """Measure one cell; fresh machine per channel (see module doc)."""
    experiment = MatrixExperiment(uarches=(uarch.name,),
                                  combos=((train_kind, victim_kind),),
                                  seed=seed, mitigations=mitigations)
    [spec] = experiment.job_specs()
    return experiment.run_one(spec, JobContext()).result


def run_matrix(uarches, *, combos=ASYMMETRIC_COMBOS, seed: int = 0,
               mitigations: MitigationConfig = DEFAULT_MITIGATIONS,
               jobs: int = 1) -> list[CellResult]:
    """Run the full Table 1 experiment over *uarches*.

    ``jobs`` shards the cells across worker processes; results are
    byte-identical at any value (each cell is an independent fresh
    machine either way).  A failed cell raises, as the pre-runner API
    did — drive :class:`MatrixExperiment` through
    :func:`repro.runner.run_campaign` directly for failure capture.
    """
    experiment = MatrixExperiment(
        uarches=tuple(u.name for u in uarches), combos=tuple(combos),
        seed=seed, mitigations=mitigations)
    return run_campaign(experiment, jobs=jobs).raise_on_failure().value


_REACH_GLYPH = {
    Reach.NONE: "-",
    Reach.FETCH: "IF",
    Reach.DECODE: "ID",
    Reach.EXECUTE: "EX",
}


def format_matrix(results: list[CellResult]) -> str:
    """Render the matrix the way Table 1 does, one block per µarch."""
    lines = []
    uarches = sorted({r.uarch for r in results})
    trains = list(TrainKind)
    victims = list(VictimKind)
    for uarch in uarches:
        cells = {(r.train, r.victim): r.reach
                 for r in results if r.uarch == uarch}
        lines.append(f"=== {uarch} ===")
        header = "train \\ victim".ljust(16) + "".join(
            v.value.ljust(12) for v in victims)
        lines.append(header)
        for train in trains:
            row = [train.value.ljust(16)]
            for victim in victims:
                reach = cells.get((train, victim))
                row.append(("." if reach is None
                            else _REACH_GLYPH[reach]).ljust(12))
            lines.append("".join(row))
        lines.append("")
    return "\n".join(lines)
