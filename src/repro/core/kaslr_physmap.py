"""Exploit 2: derandomizing physmap KASLR with P2 (paper §7.2).

physmap is mapped non-executable, so the P1 fetch probe stays silent.
On Zen 1/2 the phantom window executes a single load: injecting a jmp*
prediction at ``__fdget_pos``'s call (Listing 2) toward the disclosure
gadget ``mov r12, [r12+0xbe0]`` (Listing 3) turns ``readv()`` into an
oracle for "is this kernel address mapped?" — R12 carries the second
syscall argument by the time the call site is reached.

Detection uses Prime+Probe on L2 with a 2 MiB huge page: the probed
physical line's L2 set is known because the attacker chooses the
physical offset X inside the candidate physmap.

Candidates are scanned in ascending order; the first signalling
candidate is the base (higher candidates inside the direct map alias
the same L2 set at shifted physical addresses).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import ClassVar

from ..kernel import Kaslr, MachineSpec, SYS_READV
from ..kernel.layout import reference_offsets
from ..runner import JobContext, JobSpec, derive_seed
from ..sidechannel import PrimeProbeL2
from .experiment import chunked
from .primitives import P2MappedMemory, PhantomInjector
from .results import hexaddr

#: Physical offset probed inside each candidate physmap (an arbitrary
#: always-backed low physical address; its line fixes the L2 set).
PROBE_PHYS_OFFSET = 0x4_C240


@dataclass
class PhysmapResult:
    """Outcome of one physmap derandomization run."""

    guessed_base: int | None
    seconds: float
    candidates_scanned: int

    def correct(self, kaslr: Kaslr) -> bool:
        return self.guessed_base == kaslr.physmap_base

    def to_dict(self) -> dict:
        return {"guessed_physmap": hexaddr(self.guessed_base),
                "candidates_scanned": self.candidates_scanned,
                "simulated_ms": self.seconds * 1000}

    def summary(self) -> str:
        guess = (f"{self.guessed_base:#x}" if self.guessed_base is not None
                 else "none")
        return (f"guessed physmap {guess} after "
                f"{self.candidates_scanned} candidates, "
                f"{self.seconds * 1000:.2f} simulated ms")


def break_physmap_kaslr(machine, image_base: int, *,
                        verify_rounds: int = 3, min_hits: int = 2,
                        candidates=None) -> PhysmapResult:
    """Run the full §7.2 exploit.  Needs the kernel image base (from
    exploit 1) for the call-site and gadget addresses.

    *candidates* restricts the ascending scan to one chunk (the
    parallel campaign's unit); the default scans all 25 600 slots with
    early exit at the first verified hit.
    """
    if not machine.uarch.phantom_reaches_execute:
        raise ValueError(
            f"{machine.uarch.name}: phantom window does not reach "
            f"execute; P2 requires Zen 1/2")
    offsets = reference_offsets()
    call_site = image_base + offsets["fdget_call_site"]
    gadget = image_base + offsets["physmap_gadget"]

    injector = PhantomInjector(machine)
    pp = PrimeProbeL2(machine)
    p2 = P2MappedMemory(machine, injector=injector, pp=pp)
    l2_set = PrimeProbeL2.set_of_phys(PROBE_PHYS_OFFSET)
    start = machine.seconds()

    def run_victim(rsi: int) -> None:
        machine.syscall(SYS_READV, 3, rsi)

    def probe(candidate: int) -> bool:
        target = candidate + PROBE_PHYS_OFFSET
        misses = 0
        pp.prime(l2_set)
        injector.inject(call_site, gadget)
        run_victim(target - P2MappedMemory.GADGET_DISPLACEMENT)
        return pp.probe_misses(l2_set) > 0

    if candidates is None:
        candidates = Kaslr.physmap_candidates()
    for scanned, candidate in enumerate(candidates, 1):
        if not probe(candidate):
            continue
        hits = sum(probe(candidate) for _ in range(verify_rounds))
        if hits >= min_hits:
            return PhysmapResult(guessed_base=candidate,
                                 seconds=machine.seconds() - start,
                                 candidates_scanned=scanned)
    return PhysmapResult(guessed_base=None,
                         seconds=machine.seconds() - start,
                         candidates_scanned=len(candidates))


@dataclass(frozen=True)
class PhysmapExperiment:
    """The §7.2 campaign: the 25 600 slots in fixed ascending chunks.

    Each chunk scans on a fresh machine and early-exits at its first
    verified hit; the reduce step takes the hit from the lowest chunk —
    the same candidate the serial ascending scan stops at (higher
    candidates alias the same L2 set, so only the *first* hit is the
    base).  ``candidates_scanned`` is summed over all chunks: it counts
    total probe work, which — unlike the serial early-exit count — is
    identical at any ``--jobs``.
    """

    name: ClassVar[str] = "kaslr-physmap"

    machine: MachineSpec
    image_base: int
    verify_rounds: int = 3
    min_hits: int = 2
    chunk_candidates: int = 1600        # 25600 slots -> 16 chunks

    def campaign_config(self) -> dict:
        return {"uarch": self.machine.uarch,
                "kaslr_seed": self.machine.kaslr_seed,
                "image_base": f"{self.image_base:#x}",
                "candidates": len(Kaslr.physmap_candidates())}

    def job_specs(self) -> list[JobSpec]:
        total = len(Kaslr.physmap_candidates())
        return [JobSpec.make(self.name, (index,),
                             derive_seed(self.machine.kaslr_seed, (index,)),
                             machine=self.machine, start=start, stop=stop)
                for index, start, stop in chunked(total,
                                                  self.chunk_candidates)]

    def run_one(self, spec: JobSpec, ctx: JobContext) -> PhysmapResult:
        machine = ctx.boot(spec.machine)
        chunk = Kaslr.physmap_candidates()[spec.param("start"):
                                           spec.param("stop")]
        return break_physmap_kaslr(machine, self.image_base,
                                   verify_rounds=self.verify_rounds,
                                   min_hits=self.min_hits,
                                   candidates=chunk)

    def reduce(self, results) -> PhysmapResult:
        chunks = [r.value for r in results if r.ok]
        guessed = next((c.guessed_base for c in chunks
                        if c.guessed_base is not None), None)
        return PhysmapResult(
            guessed_base=guessed,
            seconds=sum(c.seconds for c in chunks),
            candidates_scanned=sum(c.candidates_scanned for c in chunks))
