"""Exploit 2: derandomizing physmap KASLR with P2 (paper §7.2).

physmap is mapped non-executable, so the P1 fetch probe stays silent.
On Zen 1/2 the phantom window executes a single load: injecting a jmp*
prediction at ``__fdget_pos``'s call (Listing 2) toward the disclosure
gadget ``mov r12, [r12+0xbe0]`` (Listing 3) turns ``readv()`` into an
oracle for "is this kernel address mapped?" — R12 carries the second
syscall argument by the time the call site is reached.

Detection uses Prime+Probe on L2 with a 2 MiB huge page: the probed
physical line's L2 set is known because the attacker chooses the
physical offset X inside the candidate physmap.

Candidates are scanned in ascending order; the first signalling
candidate is the base (higher candidates inside the direct map alias
the same L2 set at shifted physical addresses).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..kernel import Kaslr, SYS_READV
from ..kernel.layout import reference_offsets
from ..sidechannel import PrimeProbeL2
from .primitives import P2MappedMemory, PhantomInjector

#: Physical offset probed inside each candidate physmap (an arbitrary
#: always-backed low physical address; its line fixes the L2 set).
PROBE_PHYS_OFFSET = 0x4_C240


@dataclass
class PhysmapResult:
    """Outcome of one physmap derandomization run."""

    guessed_base: int | None
    seconds: float
    candidates_scanned: int

    def correct(self, kaslr: Kaslr) -> bool:
        return self.guessed_base == kaslr.physmap_base


def break_physmap_kaslr(machine, image_base: int, *,
                        verify_rounds: int = 3,
                        min_hits: int = 2) -> PhysmapResult:
    """Run the full §7.2 exploit.  Needs the kernel image base (from
    exploit 1) for the call-site and gadget addresses."""
    if not machine.uarch.phantom_reaches_execute:
        raise ValueError(
            f"{machine.uarch.name}: phantom window does not reach "
            f"execute; P2 requires Zen 1/2")
    offsets = reference_offsets()
    call_site = image_base + offsets["fdget_call_site"]
    gadget = image_base + offsets["physmap_gadget"]

    injector = PhantomInjector(machine)
    pp = PrimeProbeL2(machine)
    p2 = P2MappedMemory(machine, injector=injector, pp=pp)
    l2_set = PrimeProbeL2.set_of_phys(PROBE_PHYS_OFFSET)
    start = machine.seconds()

    def run_victim(rsi: int) -> None:
        machine.syscall(SYS_READV, 3, rsi)

    def probe(candidate: int) -> bool:
        target = candidate + PROBE_PHYS_OFFSET
        misses = 0
        pp.prime(l2_set)
        injector.inject(call_site, gadget)
        run_victim(target - P2MappedMemory.GADGET_DISPLACEMENT)
        return pp.probe_misses(l2_set) > 0

    for scanned, candidate in enumerate(Kaslr.physmap_candidates(), 1):
        if not probe(candidate):
            continue
        hits = sum(probe(candidate) for _ in range(verify_rounds))
        if hits >= min_hits:
            return PhysmapResult(guessed_base=candidate,
                                 seconds=machine.seconds() - start,
                                 candidates_scanned=scanned)
    return PhysmapResult(guessed_base=None,
                         seconds=machine.seconds() - start,
                         candidates_scanned=len(Kaslr.physmap_candidates()))
