"""Noise handling for Prime+Probe exploits (paper §7.3).

Prime+Probe on the L1 instruction cache is noisy: the syscall thrashes
sets before the probe, the replacement policy interferes, and prefetch
adds traffic.  The paper's remedy is a bounded relative score summed
over many sets:

    score_guess = sum_S min(max(T_S - B_S, -bound), +bound)

where ``T_S`` is the probe time for set S with the injected target
mapping to S and ``B_S`` the baseline with the target mapping to an
unrelated set.  Clamping keeps one outlier set from dominating.
"""

from __future__ import annotations

from dataclasses import dataclass
from statistics import median


def bounded_difference(signal: int, baseline: int, *,
                       bound: int = 10) -> int:
    """One clamped T_S - B_S term."""
    return min(max(signal - baseline, -bound), bound)


def bounded_score(samples, *, bound: int = 10) -> int:
    """Accumulate the paper's score over per-set (signal, baseline)."""
    return sum(bounded_difference(s.signal, s.baseline, bound=bound)
               for s in samples)


@dataclass
class GuessScore:
    """Score assigned to one candidate (KASLR slot, address guess...)."""

    guess: int
    score: int


def best_guess(scores: list[GuessScore]) -> GuessScore:
    """Highest-scoring candidate."""
    return max(scores, key=lambda g: g.score)


def score_margin(scores: list[GuessScore]) -> float:
    """How far the best guess stands above the field (in score units).

    A margin near zero means the measurement is inconclusive — callers
    use it to decide whether to re-run with more sets/repetitions.
    """
    if len(scores) < 2:
        return float("inf")
    ranked = sorted((g.score for g in scores), reverse=True)
    med = median(ranked)
    return ranked[0] - med
