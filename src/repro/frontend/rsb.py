"""Return Stack Buffer (a.k.a. Return Address Stack).

A small circular stack of recent call sites used to predict ``ret``
targets without waiting for the stack load (paper §2.1: N is usually
16 or 32).  Overflow silently drops the oldest frame; underflow returns
no prediction.  The paper's "training using ret" case predicts a return
to the most recent call site — exactly what popping this structure
yields.
"""

from __future__ import annotations


class RSB:
    """Fixed-depth return-address predictor."""

    def __init__(self, depth: int = 32) -> None:
        if depth <= 0:
            raise ValueError("depth must be positive")
        self.depth = depth
        self._stack: list[int] = []
        self.overflows = 0
        self.underflows = 0

    def push(self, return_address: int) -> None:
        """Record the return address of an executed call."""
        if len(self._stack) == self.depth:
            self._stack.pop(0)
            self.overflows += 1
        self._stack.append(return_address)

    def pop(self) -> int | None:
        """Predict a return target; None when empty (underflow)."""
        if not self._stack:
            self.underflows += 1
            return None
        return self._stack.pop()

    def peek(self) -> int | None:
        return self._stack[-1] if self._stack else None

    def clear(self) -> None:
        """RSB stuffing / context-switch flush."""
        self._stack.clear()

    def __len__(self) -> int:
        return len(self._stack)
