"""Branch Target Buffer with XOR-linear index/tag functions.

Entries are stored under ``(set, tag)`` keys computed by per-µarch
XOR functions of the branch-source virtual address, so *aliasing* —
two different source addresses selecting the same entry — emerges from
the hash functions exactly as on hardware.  The Zen 3/4 tag functions
are the cross-privilege functions the paper reverse engineered
(Figure 7); Zen 1/2 use Retbleed-style folding without bit 47; Intel
mixes the privilege mode into the tag, which is why the paper found no
user->kernel reuse on Intel parts.

Entries record the *semantics* the training branch had (kind, target
encoding).  A prediction served for a different instruction therefore
carries the trainer's semantics — the root of Phantom.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from ..isa import BranchKind
from ..params import MASK64, VA_MASK, canonical
from ..revtools.gf2 import parity
from ..telemetry import metrics as _metrics

_REG = _metrics.REGISTRY

#: Figure 7 — Zen 3/4 cross-privilege tag functions (bit 47 in each).
ZEN3_TAG_FUNCTIONS: tuple[int, ...] = (
    (1 << 47) | (1 << 35) | (1 << 23),
    (1 << 47) | (1 << 36) | (1 << 24) | (1 << 12),
    (1 << 47) | (1 << 37) | (1 << 25) | (1 << 13),
    (1 << 47) | (1 << 38) | (1 << 26) | (1 << 14),
    (1 << 47) | (1 << 39) | (1 << 26) | (1 << 13),
    (1 << 47) | (1 << 39) | (1 << 27) | (1 << 15),
    (1 << 47) | (1 << 40) | (1 << 28) | (1 << 16),
    (1 << 47) | (1 << 41) | (1 << 29) | (1 << 17),
    (1 << 47) | (1 << 42) | (1 << 30) | (1 << 18),
    (1 << 47) | (1 << 43) | (1 << 31) | (1 << 19),
    (1 << 47) | (1 << 44) | (1 << 32) | (1 << 20),
    (1 << 47) | (1 << 45) | (1 << 33) | (1 << 21),
)

#: The two published user/kernel alias patterns for Zen 3/4 (paper §6.2).
ZEN3_ALIAS_PATTERNS: tuple[int, ...] = (
    0xFFFFBFF800000000, 0xFFFF8003FF800000,
)

#: One supplemental tag function covering the bits (22, 34, 46) that
#: appear in none of the twelve published functions.  The paper notes
#: its recovered set is incomplete ("We did not find some of the
#: functions, potentially because they do not involve bit 47"); the
#: modelled BTB includes this one so that single-bit flips of those
#: bits do not alias.  It vanishes on both published alias patterns,
#: so every published result is preserved.
ZEN3_SUPPLEMENTAL_FUNCTION: int = (1 << 46) | (1 << 34) | (1 << 22)

#: The functions the modelled Zen 3/4 BTB actually uses.
ZEN3_BTB_FUNCTIONS: tuple[int, ...] = (
    ZEN3_TAG_FUNCTIONS + (ZEN3_SUPPLEMENTAL_FUNCTION,)
)

#: Zen 1/2 tag functions (Retbleed-style 12-bit folding, no bit 47):
#: g_i = b(12+i) ^ b(24+i) ^ b(36+i).
ZEN1_TAG_FUNCTIONS: tuple[int, ...] = tuple(
    (1 << (12 + i)) | (1 << (24 + i)) | (1 << (36 + i)) for i in range(12)
)

#: A compact Zen 1/2 user/kernel alias: flip b47 and compensate in g11
#: by flipping b23.  Weight 2 — cross-privilege aliasing is easy on
#: Zen 1/2, as Retbleed found.
ZEN1_ALIAS_PATTERN: int = (1 << 47) | (1 << 23)


@dataclass(frozen=True)
class BTBIndexing:
    """Index/tag hash description for one microarchitecture."""

    name: str
    set_bits: int = 12                   # set index = va[0:set_bits]
    tag_functions: tuple[int, ...] = ZEN3_BTB_FUNCTIONS
    privilege_in_tag: bool = False       # Intel: user/kernel cannot alias

    def index(self, va: int, kernel_mode: bool) -> tuple[int, int]:
        """Return the ``(set, tag)`` the address selects."""
        va = canonical(va) & VA_MASK
        set_idx = va & ((1 << self.set_bits) - 1)
        tag = 0
        for i, fn in enumerate(self.tag_functions):
            tag |= parity(fn & va) << i
        if self.privilege_in_tag:
            tag |= int(kernel_mode) << len(self.tag_functions)
        return set_idx, tag

    def collides(self, va_a: int, va_b: int, *, kernel_a: bool = False,
                 kernel_b: bool = False) -> bool:
        """True if the two source addresses select the same BTB entry."""
        return self.index(va_a, kernel_a) == self.index(va_b, kernel_b)

    def kernel_alias_mask(self) -> int:
        """Minimal flip pattern turning a kernel source into a colliding
        user source (what the exploits XOR kernel addresses with).

        Raises ValueError when no such pattern exists (Intel: the
        privilege mode is part of the tag).
        """
        if self.privilege_in_tag:
            raise ValueError(f"{self.name}: no cross-privilege aliasing")
        from ..revtools.collider import solve_alias_pattern

        return solve_alias_pattern(self.tag_functions,
                                   keep_low_bits=self.set_bits)

    def user_alias_mask(self) -> int:
        """Minimal nonzero user-to-user alias flip pattern (bit 47 clear,
        low set-index bits clear, every tag function preserved)."""
        from ..revtools import gf2

        width = 47 - self.set_bits  # bits [set_bits, 47): user space only
        shifted = [(m >> self.set_bits) & ((1 << width) - 1)
                   for m in self.tag_functions]
        # Only masks fully expressible below bit 47 constrain this space;
        # functions involving bit 47 must see it unchanged (it stays 0),
        # so their lower bits form the constraint as well.
        kernel = gf2.orthogonal_complement(shifted, width)
        candidates = sorted((v for v in kernel if v),
                            key=lambda v: (gf2.popcount(v), v))
        if not candidates:
            raise ValueError(f"{self.name}: no user-space alias exists")
        return candidates[0] << self.set_bits


@dataclass
class BTBEntry:
    """One predicted branch source."""

    kind: BranchKind
    target: int                 # absolute target, or displacement if pc_rel
    pc_rel: bool                # direct branches are stored PC-relative
    trained_kernel: bool        # privilege mode of the trainer (AutoIBRS)
    source_pc: int              # trainer's source pc (diagnostics only)

    def predicted_target(self, source_pc: int) -> int:
        """Resolve the stored target for a (possibly aliased) source.

        PC-relative entries reproduce the paper's observation that a
        direct-branch prediction lands at the *same relative distance*
        from the victim as the trained target had from the trainer
        (Figure 5 A: C' = B + (C - A)).
        """
        if self.pc_rel:
            return canonical((source_pc + self.target) & MASK64)
        return canonical(self.target)


#: Branch kinds whose BTB target is stored PC-relative.
_PCREL_KINDS = frozenset({BranchKind.DIRECT, BranchKind.CONDITIONAL,
                          BranchKind.CALL_DIRECT})


class BTB:
    """The branch target buffer proper: set-associative with LRU.

    Entries live in per-set LRU lists of at most *ways* entries keyed
    by tag.  Heavy branch activity in one set evicts older entries —
    the "undesired BTB aliasing" effect behind the paper's occasional
    no-signal runs (§7.4), and the reason exploits re-inject their
    prediction every round.
    """

    def __init__(self, indexing: BTBIndexing, *, ways: int = 8) -> None:
        if ways <= 0:
            raise ValueError("ways must be positive")
        self.indexing = indexing
        self.ways = ways
        from collections import OrderedDict

        self._sets: dict[int, "OrderedDict[int, BTBEntry]"] = {}
        self._hash_cache: dict[tuple[int, bool], tuple[int, int]] = {}
        #: Every ``(set, tag)`` currently holding an entry.  Mirror of
        #: ``_sets`` maintained at all mutation points so the superblock
        #: engine can test a block's key footprint against the live
        #: population with one set intersection instead of re-scanning
        #: each byte (see :meth:`block_keys`).
        self.live_keys: set[tuple[int, int]] = set()
        self.installs = 0
        self.hits = 0
        self.evictions = 0
        self._m_installs = _metrics.counter("btb_installs")
        self._m_hits = _metrics.counter("btb_hits")
        self._m_evictions = _metrics.counter("btb_evictions")

    def _key(self, va: int, kernel_mode: bool) -> tuple[int, int]:
        # Cache key: the bare va when privilege can't alter the hash
        # (the common case — avoids a tuple allocation per probe),
        # (va, True) for privilege-tagged kernel lookups.
        cache_key = (va, True) if (kernel_mode
                                   and self.indexing.privilege_in_tag) else va
        key = self._hash_cache.get(cache_key)
        if key is None:
            key = self.indexing.index(va, kernel_mode)
            self._hash_cache[cache_key] = key
        return key

    def _ways_of(self, set_index: int):
        ways = self._sets.get(set_index)
        if ways is None:
            from collections import OrderedDict

            ways = OrderedDict()
            self._sets[set_index] = ways
        return ways

    def train(self, source_pc: int, kind: BranchKind, target: int, *,
              kernel_mode: bool) -> None:
        """Install/overwrite the entry for a taken branch at *source_pc*."""
        if not kind.is_branch:
            raise ValueError("cannot train a non-branch")
        pc_rel = kind in _PCREL_KINDS
        stored = ((target - source_pc) & MASK64) if pc_rel \
            else canonical(target)
        set_index, tag = self._key(source_pc, kernel_mode)
        ways = self._ways_of(set_index)
        ways[tag] = BTBEntry(kind=kind, target=stored, pc_rel=pc_rel,
                             trained_kernel=kernel_mode,
                             source_pc=source_pc)
        ways.move_to_end(tag)
        self.live_keys.add((set_index, tag))
        if len(ways) > self.ways:
            evicted_tag, _ = ways.popitem(last=False)
            self.live_keys.discard((set_index, evicted_tag))
            self.evictions += 1
            if _REG.enabled:
                self._m_evictions.value += 1
        self.installs += 1
        if _REG.enabled:
            self._m_installs.value += 1

    def evict(self, source_pc: int, *, kernel_mode: bool) -> None:
        """Drop the entry a source address selects (untraining)."""
        set_index, tag = self._key(source_pc, kernel_mode)
        ways = self._sets.get(set_index)
        if ways is not None and ways.pop(tag, None) is not None:
            self.live_keys.discard((set_index, tag))

    def lookup(self, source_pc: int, *, kernel_mode: bool) -> BTBEntry | None:
        """Query the predictor for a branch at *source_pc*."""
        set_index, tag = self._key(source_pc, kernel_mode)
        ways = self._sets.get(set_index)
        if ways is None:
            return None
        entry = ways.get(tag)
        if entry is not None:
            ways.move_to_end(tag)
            self.hits += 1
            if _REG.enabled:
                self._m_hits.value += 1
        return entry

    def scan_block(self, block_start: int, block_len: int, *,
                   kernel_mode: bool) -> list[tuple[int, BTBEntry]]:
        """All predicted branch sources inside a fetch block, in order.

        This is the pre-decode query the Phantom frontend performs: the
        BTB decides *whether* any byte of the block is a branch before
        the bytes are decoded.
        """
        found = []
        sets = self._sets
        if not sets:
            return found
        # Inlined _key with the loop-invariant lookups hoisted: this
        # scan runs for every byte of every fetched instruction, the
        # hottest loop in the frontend.
        cache = self._hash_cache
        index = self.indexing.index
        priv = kernel_mode and self.indexing.privilege_in_tag
        for pc in range(block_start, block_start + block_len):
            cache_key = (pc, True) if priv else pc
            key = cache.get(cache_key)
            if key is None:
                key = index(pc, kernel_mode)
                cache[cache_key] = key
            set_index, tag = key
            ways = sets.get(set_index)
            if ways is None:
                continue
            entry = ways.get(tag)
            if entry is not None:
                found.append((pc, entry))
        return found

    def block_keys(self, block_start: int, block_len: int, *,
                   kernel_mode: bool) -> frozenset[tuple[int, int]]:
        """The ``(set, tag)`` footprint of a code block's byte addresses.

        The footprint is a pure function of the address range and the
        hash functions — independent of BTB contents — so the superblock
        engine computes it once at compile time and later decides
        "would :meth:`scan_block` find anything?" by intersecting with
        :attr:`live_keys`.  Matching in key space rather than stored-pc
        space is what keeps aliasing (the Phantom mechanism) visible: a
        trainer at an unrelated va that hashes onto one of these keys
        must still force the block onto the scanning slow path.
        """
        cache = self._hash_cache
        index = self.indexing.index
        priv = kernel_mode and self.indexing.privilege_in_tag
        keys = set()
        for pc in range(block_start, block_start + block_len):
            cache_key = (pc, True) if priv else pc
            key = cache.get(cache_key)
            if key is None:
                key = index(pc, kernel_mode)
                cache[cache_key] = key
            keys.add(key)
        return frozenset(keys)

    def flush(self) -> None:
        """IBPB: drop all predictions."""
        self._sets.clear()
        self.live_keys.clear()

    def set_occupancy(self, set_index: int) -> int:
        ways = self._sets.get(set_index)
        return len(ways) if ways else 0

    def __len__(self) -> int:
        return sum(len(ways) for ways in self._sets.values())
