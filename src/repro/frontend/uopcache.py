"""µop cache: 64 sets x 8 ways, indexed by virtual address bits [6:12).

Geometry follows the paper's reverse engineering (§5.1): "these caches
always have 64 8-way sets, selected by the lower 12 bits of the
instruction's virtual address".  Entries cover 64-byte instruction
windows; decoding instructions in a window fills it, and filling a full
set evicts — the effect the ID observation channel measures through the
``op_cache_hit_miss`` performance counters.
"""

from __future__ import annotations

from ..memory.cache import Cache
from ..params import CACHE_LINE
from ..telemetry import metrics as _metrics

_REG = _metrics.REGISTRY


class UopCache:
    """Virtually indexed µop cache with hit/miss accounting."""

    SETS = 64
    WAYS = 8
    WINDOW = CACHE_LINE  # 64-byte instruction windows

    def __init__(self) -> None:
        self._cache = Cache("uop", self.SETS * self.WAYS * self.WINDOW,
                            self.WAYS, line_size=self.WINDOW)
        self.hit_events = 0
        self.miss_events = 0
        self._m_hits = _metrics.counter("uopcache_dispatch_hits")
        self._m_misses = _metrics.counter("uopcache_dispatch_misses")

    def set_index(self, va: int) -> int:
        """Set selected by VA bits [6:12)."""
        return (va >> 6) & (self.SETS - 1)

    def lookup(self, va: int) -> bool:
        """Does the window holding *va* have cached µops?"""
        return self._cache.lookup(va)

    def access(self, va: int) -> bool:
        """Dispatch-path access: hit serves µops, miss decodes + fills.

        Returns True on hit.  This is the event pair the paper samples
        (Zen: ``op_cache_hit_miss``; Intel: ``idq.dsb_cycles``).
        """
        hit, _ = self._cache.access(va)
        if hit:
            self.hit_events += 1
            if _REG.enabled:
                self._m_hits.value += 1
        else:
            self.miss_events += 1
            if _REG.enabled:
                self._m_misses.value += 1
        return hit

    def fill(self, va: int) -> None:
        """Fill without counting dispatch events (speculative decode)."""
        self._cache.fill(va)

    def invalidate_window(self, va: int) -> None:
        self._cache.invalidate(va)

    def flush(self) -> None:
        self._cache.flush_all()

    def set_occupancy(self, set_index: int) -> int:
        return self._cache.set_occupancy(set_index)

    def resident_windows(self, set_index: int) -> list[int]:
        return self._cache.resident_lines(set_index)

    def reset_counters(self) -> None:
        self.hit_events = 0
        self.miss_events = 0
