"""Branch History Buffer: a footprint of recent control-flow edges.

BHBs index/tag indirect-branch predictions on real hardware (Spectre-v2
and BHI build on this).  The Phantom exploits rely on plain BTB
aliasing, so by default the BHB does not participate in BTB indexing
here, but the structure is modelled (and tested) because the training
harness uses it to keep history deterministic between runs.
"""

from __future__ import annotations

from ..params import VA_MASK


class BHB:
    """Shift-XOR history register, per the public Spectre analyses."""

    def __init__(self, bits: int = 64, shift: int = 2) -> None:
        self.bits = bits
        self.shift = shift
        self._mask = (1 << bits) - 1
        self.value = 0

    def footprint(self, source: int, target: int) -> int:
        """Edge footprint folded from the low 16 bits of both ends."""
        return ((source & 0xFFFF) ^ ((target & 0xFFFF) << 1)) & self._mask

    def update(self, source: int, target: int) -> None:
        """Record one taken control-flow edge."""
        source &= VA_MASK
        target &= VA_MASK
        self.value = ((self.value << self.shift) ^
                      self.footprint(source, target)) & self._mask

    def clear(self) -> None:
        self.value = 0

    def snapshot(self) -> int:
        return self.value

    def restore(self, value: int) -> None:
        self.value = value & self._mask
