"""Conditional (direction) predictor: a table of 2-bit counters.

Indexed by low PC bits.  The MDS-gadget exploit (paper §7.4) trains the
victim's bounds check toward *taken* through repeated in-bounds calls —
standard Spectre-v1 conditioning, which these counters reproduce.
"""

from __future__ import annotations


class ConditionalPredictor:
    """Pattern history table of saturating 2-bit counters."""

    STRONG_NOT_TAKEN = 0

    def __init__(self, entries: int = 4096) -> None:
        if entries & (entries - 1):
            raise ValueError("entries must be a power of two")
        self.entries = entries
        self._table = [self.STRONG_NOT_TAKEN] * entries

    def _index(self, pc: int) -> int:
        # Bimodal indexing by low PC bits only: aliased sources (equal
        # low bits) share a counter, as the cross-address-space training
        # attacks require.
        return pc & (self.entries - 1)

    def predict(self, pc: int) -> bool:
        """Predicted direction for the conditional branch at *pc*."""
        return self._table[self._index(pc)] >= 2

    def update(self, pc: int, taken: bool) -> None:
        """Saturating update after the branch resolves."""
        idx = self._index(pc)
        counter = self._table[idx]
        if taken:
            self._table[idx] = min(3, counter + 1)
        else:
            self._table[idx] = max(0, counter - 1)

    def clear(self) -> None:
        self._table = [self.STRONG_NOT_TAKEN] * self.entries
