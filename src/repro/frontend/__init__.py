"""Branch-prediction frontend: BTB, BHB, RSB, PHT, µop cache, BPU."""

from .bhb import BHB
from .bpu import BPU, Prediction
from .btb import (BTB, BTBEntry, BTBIndexing, ZEN1_ALIAS_PATTERN,
                  ZEN1_TAG_FUNCTIONS, ZEN3_ALIAS_PATTERNS,
                  ZEN3_BTB_FUNCTIONS, ZEN3_SUPPLEMENTAL_FUNCTION,
                  ZEN3_TAG_FUNCTIONS)
from .cond import ConditionalPredictor
from .rsb import RSB
from .uopcache import UopCache

__all__ = [
    "BHB",
    "BPU",
    "BTB",
    "BTBEntry",
    "BTBIndexing",
    "ConditionalPredictor",
    "Prediction",
    "RSB",
    "UopCache",
    "ZEN1_ALIAS_PATTERN",
    "ZEN1_TAG_FUNCTIONS",
    "ZEN3_ALIAS_PATTERNS",
    "ZEN3_BTB_FUNCTIONS",
    "ZEN3_SUPPLEMENTAL_FUNCTION",
    "ZEN3_TAG_FUNCTIONS",
]
