"""Branch Prediction Unit: BTB + RSB + conditional predictor + BHB.

The BPU answers one question for the fetch unit, *before any byte is
decoded*: "does this fetch block contain a branch, and where does it
go?"  Whatever semantics the BTB entry carries — installed by whatever
instruction trained it — become the frontend's belief about the victim
instruction (paper observation: "the training instruction always
determines the prediction semantics of the victim instruction").
"""

from __future__ import annotations

from dataclasses import dataclass

from ..isa import BranchKind
from ..telemetry import metrics as _metrics
from .bhb import BHB
from .btb import BTB, BTBEntry, BTBIndexing
from .cond import ConditionalPredictor
from .rsb import RSB

_REG = _metrics.REGISTRY


@dataclass(frozen=True)
class Prediction:
    """A frontend prediction for a branch source inside a fetch block."""

    source_pc: int          # where the predicted branch source sits
    kind: BranchKind        # semantics recorded by the trainer
    target: int             # predicted next fetch address
    cross_privilege: bool   # trainer privilege != current privilege
    from_rsb: bool = False  # target served by the return stack


class BPU:
    """Pre-decode next-fetch prediction and post-execute training."""

    def __init__(self, indexing: BTBIndexing, *, rsb_depth: int = 32,
                 pht_entries: int = 4096, btb_ways: int = 8) -> None:
        self.btb = BTB(indexing, ways=btb_ways)
        self.rsb = RSB(rsb_depth)
        self.cond = ConditionalPredictor(pht_entries)
        self.bhb = BHB()
        self._m_predictions = _metrics.counter("bpu_predictions")
        self._m_cross_priv = _metrics.counter(
            "bpu_predictions", cross_privilege="true")
        self._m_trainings = _metrics.counter("bpu_trainings")

    # -- prediction (frontend, pre-decode) ---------------------------------

    def predict_in_block(self, block_start: int, length: int, *,
                         kernel_mode: bool,
                         from_pc: int | None = None) -> Prediction | None:
        """First predicted branch source in ``[from_pc, block_start+length)``.

        Returns None when the BTB believes the block is branch-free
        (fetch continues sequentially).
        """
        start = block_start if from_pc is None else max(block_start, from_pc)
        for pc, entry in self.btb.scan_block(block_start, length,
                                             kernel_mode=kernel_mode):
            if pc < start:
                continue
            prediction = self._resolve(pc, entry, kernel_mode)
            if prediction is not None:
                if _REG.enabled:
                    self._m_predictions.value += 1
                    if prediction.cross_privilege:
                        self._m_cross_priv.value += 1
                return prediction
        return None

    def predict_scanned(self, found: list,
                        kernel_mode: bool) -> Prediction | None:
        """``predict_in_block`` resumed from a cached ``scan_block`` result.

        ``BTB.scan_block`` is a pure read, so callers that query the
        same block repeatedly while the BTB is provably static (the
        transient window walk — branches only train at retirement) may
        cache its result and re-run just the resolution step.  The
        resolution itself stays live on every call: conditional/RSB
        state and the prediction metrics behave exactly as if
        ``predict_in_block`` had been called.
        """
        for pc, entry in found:
            prediction = self._resolve(pc, entry, kernel_mode)
            if prediction is not None:
                if _REG.enabled:
                    self._m_predictions.value += 1
                    if prediction.cross_privilege:
                        self._m_cross_priv.value += 1
                return prediction
        return None

    def predict_at(self, pc: int, *, kernel_mode: bool) -> Prediction | None:
        """Prediction for a branch source at exactly *pc* (if any)."""
        entry = self.btb.lookup(pc, kernel_mode=kernel_mode)
        if entry is None:
            return None
        return self._resolve(pc, entry, kernel_mode)

    def _resolve(self, pc: int, entry: BTBEntry,
                 kernel_mode: bool) -> Prediction | None:
        kind = entry.kind
        if kind is BranchKind.CONDITIONAL and not self.cond.predict(pc):
            return None  # predicted not-taken: no redirect from this source
        if kind is BranchKind.RETURN:
            target = self.rsb.peek()
            if target is None:
                return None
            return Prediction(pc, kind, target,
                              entry.trained_kernel != kernel_mode,
                              from_rsb=True)
        return Prediction(pc, kind, entry.predicted_target(pc),
                          entry.trained_kernel != kernel_mode)

    # -- training (backend, post-execute) ----------------------------------

    def train_branch(self, pc: int, kind: BranchKind, target: int | None,
                     taken: bool, *, kernel_mode: bool) -> None:
        """Record an architecturally executed branch.

        Taken branches install/refresh their BTB entry; conditional
        direction updates the PHT; calls push the RSB (the matching pop
        happens in :meth:`predict_return_pop` / at ret execution).
        """
        if _REG.enabled:
            self._m_trainings.value += 1
        if kind is BranchKind.CONDITIONAL:
            self.cond.update(pc, taken)
        if taken and target is not None:
            self.btb.train(pc, kind, target, kernel_mode=kernel_mode)
            self.bhb.update(pc, target)

    def call_executed(self, return_address: int) -> None:
        self.rsb.push(return_address)

    def ret_executed(self) -> int | None:
        """Pop the RSB at ret execution; returns the predicted target."""
        return self.rsb.pop()

    # -- barriers ------------------------------------------------------------

    def ibpb(self) -> None:
        """Indirect Branch Prediction Barrier: flush all predictions."""
        self.btb.flush()
        self.rsb.clear()
        self.cond.clear()
        self.bhb.clear()
