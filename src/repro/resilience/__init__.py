"""Resilient campaigns: checkpoint/resume, supervision, chaos testing.

The paper's headline tables come from hours-long campaign sweeps, and
until this package a single worker crash, OOM kill or Ctrl-C threw all
completed work away.  Three layers fix that, each exercised by the
next:

* :mod:`~repro.resilience.checkpoint` — an append-only JSONL journal
  of finished jobs keyed by spec fingerprint;
  ``run_campaign(..., resume=path)`` skips journaled jobs and still
  produces a manifest fingerprint-identical to an uninterrupted run.
* :mod:`~repro.resilience.supervisor` — pool respawn + requeue on
  ``BrokenProcessPool``, a parent-side heartbeat watchdog for workers
  the ``SIGALRM`` timeout cannot reach, deterministic backoff, and
  graceful degradation to in-process execution.
* :mod:`~repro.resilience.chaos` — seed-driven injection of exactly
  those faults (raise / sigkill / hang / checkpoint-ENOSPC), each
  firing once per state dir, so the recovery paths above run under
  ``pytest`` and the ``repro chaos`` smoke mode.
* :mod:`~repro.resilience.service_chaos` — the same philosophy one
  level up: SIGKILL the whole campaign *service* mid-campaign, restart
  it against its ``--state-dir``, and gate on the intake journal's
  durability contract (``repro chaos --service``).

See ``docs/resilience.md``.
"""

from .chaos import (CAMPAIGN_TARGET, CHECKPOINT_TARGET, FAULT_KINDS,
                    ChaosExperiment, ChaosFault, ChaosInterruptor,
                    ChaosPlan, plan_chaos)
from .checkpoint import (CHECKPOINT_SCHEMA, CheckpointRecord,
                         CheckpointWriter, load_checkpoint,
                         spec_fingerprint)
from .service_chaos import (SERVICE_CHAOS_SCHEMA, ServiceChaosError,
                            ServiceChaosReport, run_service_chaos)
from .supervisor import SupervisionPolicy, supervise

__all__ = [
    "CAMPAIGN_TARGET",
    "CHECKPOINT_SCHEMA",
    "CHECKPOINT_TARGET",
    "ChaosExperiment",
    "ChaosFault",
    "ChaosInterruptor",
    "ChaosPlan",
    "CheckpointRecord",
    "CheckpointWriter",
    "FAULT_KINDS",
    "SERVICE_CHAOS_SCHEMA",
    "ServiceChaosError",
    "ServiceChaosReport",
    "SupervisionPolicy",
    "load_checkpoint",
    "plan_chaos",
    "run_service_chaos",
    "spec_fingerprint",
    "supervise",
]
