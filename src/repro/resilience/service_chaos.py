"""Crash-durability chaos for the campaign service: SIGKILL, restart, diff.

:mod:`.chaos` kills *workers* and trusts the supervisor; this module
kills the *service process itself* — the failure the intake journal
(:mod:`repro.service.journal`) and startup recovery exist for — and
checks the whole durability contract at once:

1. boot ``repro serve --state-dir`` as a real subprocess;
2. submit one idempotent campaign and ``SIGKILL -9`` the server the
   moment the result store holds its first finished job (no drain, no
   flush beyond the write-ahead fsyncs — the honest crash);
3. restart against the same state dir, resubmit the identical request
   (the idempotency key must resolve to the *original* campaign id —
   at-most-once across the crash), and wait the recovered campaign out;
4. gate on the contract: the recovered manifest fingerprint equals a
   clean in-process ``--jobs 1`` run's, and **no job executed twice** —
   the restarted instance's memo hit count equals exactly the store
   entries that survived the kill, its store count equals the rest.

Everything here speaks to the service over plain HTTP through
:class:`~repro.service.ServiceClient` with retries enabled, because a
just-restarted server refusing a connection *is* the transient fault
the retry layer exists for.  Imports of :mod:`repro.service` are lazy:
the service package imports :mod:`repro.resilience` for its checkpoint
records, and this module sits on the other side of that boundary.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import time
from dataclasses import dataclass
from pathlib import Path

from ..errors import ReproError

SERVICE_CHAOS_SCHEMA = "phantom.service-chaos/1"


class ServiceChaosError(ReproError):
    """The harness itself failed (server never came up, kill raced the
    campaign's completion) — distinct from the contract failing."""


@dataclass(frozen=True)
class ServiceChaosReport:
    """Verdict of one SIGKILL-restart round trip."""

    campaign_id: str
    job_count: int
    jobs: int                      # --jobs inside the campaign
    entries_at_kill: int           # store objects surviving the SIGKILL
    entries_final: int
    memo: dict                     # the recovered campaign's memo stats
    clean_fingerprint: str
    recovered_fingerprint: str
    idempotent_match: bool         # resubmit resolved to the same id
    recovered_flag: bool           # status doc carried "recovered"
    wall_s: float

    @property
    def fingerprint_match(self) -> bool:
        return self.recovered_fingerprint == self.clean_fingerprint

    @property
    def duplicate_executions(self) -> int:
        """Jobs executed more than once across both instances.

        Instance one executed exactly ``entries_at_kill`` jobs (every
        success stores exactly one object, atomically — the count is
        exact even across a SIGKILL).  Zero duplicates therefore means
        the restarted instance answered exactly those from the store
        (``memo.hits``) and executed only the remainder
        (``memo.stored``).
        """
        hits = int(self.memo.get("hits", 0))
        stored = int(self.memo.get("stored", 0))
        return max(0, self.entries_at_kill - hits) + \
            max(0, stored - (self.job_count - self.entries_at_kill))

    @property
    def ok(self) -> bool:
        return (self.fingerprint_match and self.idempotent_match
                and self.recovered_flag
                and self.duplicate_executions == 0
                and self.entries_final == self.job_count)

    def to_dict(self) -> dict:
        return {"schema": SERVICE_CHAOS_SCHEMA, "ok": self.ok,
                "campaign_id": self.campaign_id,
                "job_count": self.job_count, "jobs": self.jobs,
                "entries_at_kill": self.entries_at_kill,
                "entries_final": self.entries_final,
                "memo": dict(self.memo),
                "clean_fingerprint": self.clean_fingerprint,
                "recovered_fingerprint": self.recovered_fingerprint,
                "fingerprint_match": self.fingerprint_match,
                "idempotent_match": self.idempotent_match,
                "recovered_flag": self.recovered_flag,
                "duplicate_executions": self.duplicate_executions,
                "wall_s": round(self.wall_s, 3)}


def _count_objects(store_dir: Path) -> int:
    objects = store_dir / "objects"
    if not objects.exists():
        return 0
    return sum(1 for fan in objects.iterdir() if fan.is_dir()
               for _ in fan.glob("*.json"))


class _Server:
    """One ``repro serve`` subprocess bound to an ephemeral port."""

    def __init__(self, state: Path, *, jobs: int, log_name: str,
                 python: str = sys.executable) -> None:
        self.port_file = state / "port"
        self.log_path = state / log_name
        self.port_file.unlink(missing_ok=True)
        self._log = open(self.log_path, "ab")
        src_root = Path(__file__).resolve().parents[2]
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in (str(src_root), env.get("PYTHONPATH")) if p)
        self.proc = subprocess.Popen(
            [python, "-m", "repro", "serve",
             "--host", "127.0.0.1", "--port", "0",
             "--port-file", str(self.port_file),
             "--state-dir", str(state / "service"),
             "--store-dir", str(state / "store"),
             "--jobs", str(jobs)],
            stdout=self._log, stderr=subprocess.STDOUT, env=env)

    def url(self, timeout_s: float = 30.0) -> str:
        deadline = time.monotonic() + timeout_s
        while time.monotonic() < deadline:
            if self.proc.poll() is not None:
                raise ServiceChaosError(
                    f"server exited with {self.proc.returncode} before "
                    f"binding (see {self.log_path})")
            try:
                port = int(self.port_file.read_text().strip())
            except (FileNotFoundError, ValueError):
                time.sleep(0.01)
                continue
            return f"http://127.0.0.1:{port}"
        raise ServiceChaosError(
            f"server did not publish a port within {timeout_s}s "
            f"(see {self.log_path})")

    def sigkill(self) -> None:
        """The crash under test: no warning, no drain, no flush."""
        self.proc.send_signal(signal.SIGKILL)
        self.proc.wait(timeout=30)
        self._log.close()

    def stop(self) -> None:
        if self.proc.poll() is None:
            self.proc.terminate()
            try:
                self.proc.wait(timeout=15)
            except subprocess.TimeoutExpired:
                self.proc.kill()
                self.proc.wait(timeout=15)
        if not self._log.closed:
            self._log.close()


def run_service_chaos(state_dir, *, seed: int = 0, cells: int = 8,
                      jobs: int = 1, timeout_s: float = 300.0,
                      kill_after_entries: int = 1,
                      echo=None) -> ServiceChaosReport:
    """SIGKILL a mid-campaign service, restart it, verify the contract.

    ``kill_after_entries`` is how many finished jobs must be in the
    result store before the kill lands (default 1: as early as an
    effect exists to lose).  ``echo`` (e.g. ``print``) narrates the
    phases for the CLI smoke.
    """
    from ..runner import manifest_fingerprint, run_campaign
    from ..service import (JOB_REQUEST_SCHEMA, JobRequest, RetryPolicy,
                           ServiceClient)

    def say(text: str) -> None:
        if echo is not None:
            echo(text)

    state = Path(state_dir)
    state.mkdir(parents=True, exist_ok=True)
    store_dir = state / "store"
    began = time.monotonic()

    doc = {"schema": JOB_REQUEST_SCHEMA, "tenant": "chaos",
           "experiment": "matrix",
           "params": {"uarches": ["zen 2"], "cells": cells,
                      "seed": seed}}
    doc["idempotency_key"] = JobRequest.from_doc(doc).fingerprint()

    # The reference nobody argues with: the *same request document*,
    # built by the same protocol builder, run in-process, serial, no
    # service anywhere near it.
    experiment = JobRequest.from_doc(doc).build()
    job_count = len(list(experiment.job_specs()))
    say(f"reference: clean --jobs 1 run of {job_count} jobs")
    reference = run_campaign(experiment, jobs=1).raise_on_failure()
    want = manifest_fingerprint(reference.manifest)

    retry = RetryPolicy(attempts=6, backoff_base_s=0.05, jitter_seed=seed)
    say(f"boot: repro serve --state-dir {state / 'service'}")
    first = _Server(state, jobs=jobs, log_name="server-1.log")
    try:
        client = ServiceClient(first.url(), retry=retry)
        campaign_id = client.submit(doc)["id"]
        say(f"submitted {campaign_id}; waiting for the first stored "
            f"job, then SIGKILL")
        deadline = time.monotonic() + timeout_s
        while _count_objects(store_dir) < kill_after_entries:
            if time.monotonic() > deadline:
                raise ServiceChaosError(
                    f"no job reached the store within {timeout_s}s")
            if first.proc.poll() is not None:
                raise ServiceChaosError(
                    f"server died on its own with "
                    f"{first.proc.returncode} (see {first.log_path})")
            time.sleep(0.002)
        first.sigkill()
    except BaseException:
        first.stop()
        raise
    entries_at_kill = _count_objects(store_dir)
    if entries_at_kill >= job_count:
        raise ServiceChaosError(
            f"campaign finished ({entries_at_kill}/{job_count} jobs "
            f"stored) before the SIGKILL landed; raise --cells so the "
            f"kill hits mid-flight")
    say(f"killed -9 with {entries_at_kill}/{job_count} jobs stored; "
        f"restarting on the same state dir")

    second = _Server(state, jobs=jobs, log_name="server-2.log")
    try:
        client = ServiceClient(second.url(), retry=retry)
        # At-most-once across the crash: the identical request must
        # resolve to the original campaign, not start a duplicate.
        resubmitted_id = client.submit(doc)["id"]
        status = client.wait_for(campaign_id, timeout=timeout_s)
    finally:
        second.stop()

    if status["state"] != "done":
        raise ServiceChaosError(
            f"recovered campaign ended {status['state']!r}: "
            f"{status.get('error')}")
    return ServiceChaosReport(
        campaign_id=campaign_id, job_count=job_count, jobs=jobs,
        entries_at_kill=entries_at_kill,
        entries_final=_count_objects(store_dir),
        memo=status.get("memo") or {},
        clean_fingerprint=want,
        recovered_fingerprint=manifest_fingerprint(status["manifest"]),
        idempotent_match=resubmitted_id == campaign_id,
        recovered_flag=bool(status.get("recovered")),
        wall_s=time.monotonic() - began)
