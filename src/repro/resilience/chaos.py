"""Deterministic fault injection: exercise the recovery paths for real.

A resilience layer that is never exercised is decoration.  The chaos
harness injects the exact failure classes the supervisor and the
checkpoint journal claim to survive — into real campaigns, driven by
the same :func:`repro.runner.derive_seed` machinery, so every run of a
given seed injects the same faults into the same jobs:

========== ============================================================
kind       what it does (and which recovery path it targets)
========== ============================================================
 raise      raise :class:`ChaosFault` at job start → per-job retry
 sigkill    ``SIGKILL`` the worker process → pool respawn + requeue
 hang       block ``SIGALRM`` and sleep past the timeout → heartbeat
            watchdog kill (the alarm is provably not enough)
 enospc     ``OSError(ENOSPC)`` on a checkpoint append → journaling
            degradation (campaign survives, job re-runs on resume)
========== ============================================================

Each planned fault fires **exactly once per state directory**: firing
claims a marker file with ``O_CREAT|O_EXCL``, which survives the worker
being killed (the whole point — in-memory state dies with the process).
The re-run of a faulted job therefore executes clean, which is what
makes the acceptance check meaningful: a chaos-interrupted-and-resumed
campaign must produce a manifest fingerprint equal to an uninterrupted
run's.

``sigkill``/``hang`` only make sense inside a pool worker; when a job
runs in the campaign's own process (``--jobs 1``, or the supervisor's
degraded mode) they soften to ``raise`` so the campaign stays
recoverable without a supervisor above it.
"""

from __future__ import annotations

import errno
import hashlib
import os
import signal
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from ..errors import ReproError
from ..runner.spec import derive_seed
from ..telemetry.spans import SPANS
from ..telemetry.trace import TRACE

#: Every fault kind the chaos matrix knows how to inject.
FAULT_KINDS = ("raise", "sigkill", "hang", "enospc")

#: Plan slots that are not job labels.
CHECKPOINT_TARGET = "__checkpoint__"
CAMPAIGN_TARGET = "__campaign__"


class ChaosFault(ReproError):
    """An injected (not organic) job failure."""


@dataclass(frozen=True)
class ChaosPlan:
    """Which fault hits which job, plus the fired-marker state dir.

    Frozen and picklable: the plan crosses the process-pool boundary
    inside a :class:`ChaosExperiment`.  ``parent_pid`` is captured at
    plan time so workers can tell whether they are expendable.
    """

    seed: int
    state_dir: str
    faults: tuple[tuple[str, str], ...]     # (target label, kind)
    hang_s: float = 45.0
    parent_pid: int = field(default_factory=os.getpid)

    def fault_for(self, target: str) -> str | None:
        for label, kind in self.faults:
            if label == target:
                return kind
        return None

    def claim(self, token: str) -> bool:
        """Atomically claim *token*; True exactly once per state dir.

        Write-then-hardlink, not ``O_CREAT|O_EXCL``-then-write: the
        marker must appear atomically *with* its content, because the
        claiming process can be SIGKILLed at any instant (that is the
        harness's own doing) — a half-written marker would suppress
        the fault forever while recording nothing.  ``link()`` fails
        with ``FileExistsError`` on a prior claim, which is the
        exactly-once guarantee; an orphaned ``.tmp`` from a kill
        mid-claim blocks nothing and is ignored by the readers.
        """
        fired = Path(self.state_dir) / "fired"
        fired.mkdir(parents=True, exist_ok=True)
        marker = fired / hashlib.sha256(token.encode()).hexdigest()[:24]
        tmp = marker.with_name(f"{marker.name}.tmp{os.getpid()}")
        tmp.write_text(token + "\n", encoding="utf-8")
        try:
            os.link(tmp, marker)
        except FileExistsError:
            return False
        finally:
            tmp.unlink(missing_ok=True)
        return True

    def fired_tokens(self) -> list[str]:
        """Tokens claimed so far (for tests and the smoke report)."""
        fired = Path(self.state_dir) / "fired"
        if not fired.exists():
            return []
        return sorted(marker.read_text(encoding="utf-8").strip()
                      for marker in fired.iterdir()
                      if ".tmp" not in marker.name)

    def maybe_inject(self, label: str) -> None:
        """Fire the planned fault for job *label*, once."""
        kind = self.fault_for(label)
        if kind is None:
            return
        in_worker = os.getpid() != self.parent_pid
        if not self.claim(f"{label}:{kind}"):
            return
        if kind in ("sigkill", "hang") and not in_worker:
            kind = "raise"     # no pool above us to clean up the mess
        TRACE.emit("chaos_fault", 0, target=label, fault=kind)
        SPANS.event("chaos:" + kind, status="error", target=label)
        if kind == "raise":
            raise ChaosFault(f"chaos: injected failure in {label}")
        if kind == "sigkill":
            os.kill(os.getpid(), signal.SIGKILL)
        if kind == "hang":
            # Block the alarm the per-job timeout rides on: only the
            # parent's wall-clock watchdog can reap us now.  Bounded
            # anyway, so an unwatched campaign stalls, then recovers.
            if hasattr(signal, "pthread_sigmask"):
                signal.pthread_sigmask(signal.SIG_BLOCK, {signal.SIGALRM})
            time.sleep(self.hang_s)
            raise ChaosFault(f"chaos: hang in {label} outlived the "
                             f"watchdog grace")

    def checkpoint_hook(self):
        """``fault_hook`` for :class:`~.checkpoint.CheckpointWriter`:
        one append raises ENOSPC.  ``None`` when the plan carries no
        ``enospc`` fault."""
        if self.fault_for(CHECKPOINT_TARGET) != "enospc":
            return None

        def hook(record) -> None:
            if self.claim(f"{CHECKPOINT_TARGET}:enospc"):
                TRACE.emit("chaos_fault", 0, target=CHECKPOINT_TARGET,
                           fault="enospc")
                SPANS.event("chaos:enospc", status="error",
                            target=CHECKPOINT_TARGET)
                raise OSError(errno.ENOSPC,
                              "chaos: no space left on device")
        return hook


def plan_chaos(experiment, *, seed: int, state_dir,
               kinds=FAULT_KINDS, hang_s: float = 45.0) -> ChaosPlan:
    """Deterministically assign each fault kind to a distinct target.

    Job-level kinds land on jobs chosen by ``derive_seed(seed,
    ("chaos", kind))`` (linear probing on collision); ``enospc``
    targets the checkpoint journal.  Same seed + same campaign → same
    plan, on any machine.
    """
    labels = [spec.label for spec in experiment.job_specs()]
    faults: list[tuple[str, str]] = []
    taken: set[str] = set()
    for kind in kinds:
        if kind not in FAULT_KINDS:
            raise ValueError(f"unknown chaos fault kind {kind!r} "
                             f"(choose from {', '.join(FAULT_KINDS)})")
        if kind == "enospc":
            faults.append((CHECKPOINT_TARGET, kind))
            continue
        if len(taken) == len(labels):
            break                      # more kinds than jobs
        slot = derive_seed(seed, ("chaos", kind)) % len(labels)
        while labels[slot] in taken:
            slot = (slot + 1) % len(labels)
        taken.add(labels[slot])
        faults.append((labels[slot], kind))
    return ChaosPlan(seed=seed, state_dir=str(state_dir),
                     faults=tuple(faults), hang_s=hang_s)


@dataclass(frozen=True)
class ChaosExperiment:
    """Experiment proxy that injects the plan's faults around jobs.

    Transparent otherwise: same specs, same reduce, same campaign
    config — so a chaos campaign's manifest fingerprint must equal the
    clean campaign's once every fault has been recovered from.
    """

    inner: Any
    plan: ChaosPlan

    @property
    def name(self) -> str:
        return getattr(self.inner, "name", type(self.inner).__name__)

    def campaign_config(self) -> dict:
        config = getattr(self.inner, "campaign_config", dict)() or {}
        return dict(config)

    def job_specs(self):
        return self.inner.job_specs()

    def run_one(self, spec, ctx):
        self.plan.maybe_inject(spec.label)
        return self.inner.run_one(spec, ctx)

    def reduce(self, results):
        return self.inner.reduce(results)


class ChaosInterruptor:
    """Deterministic stand-in for an operator Ctrl-C.

    Passed as ``on_job_done`` to :func:`repro.runner.run_campaign`:
    after *after_jobs* recorded results it raises ``KeyboardInterrupt``
    (once per state dir), which the executor converts into
    :class:`repro.runner.CampaignInterrupted` with the checkpoint
    already flushed — exactly the mid-campaign kill the resume path
    exists for.
    """

    def __init__(self, plan: ChaosPlan, after_jobs: int) -> None:
        self.plan = plan
        self.after_jobs = max(1, int(after_jobs))
        self.count = 0

    def __call__(self, result) -> None:
        self.count += 1
        if (self.count >= self.after_jobs
                and self.plan.claim(f"{CAMPAIGN_TARGET}:interrupt")):
            TRACE.emit("chaos_fault", 0, target=CAMPAIGN_TARGET,
                       fault="interrupt")
            SPANS.event("chaos:interrupt", status="error",
                        target=CAMPAIGN_TARGET)
            raise KeyboardInterrupt
