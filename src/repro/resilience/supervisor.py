"""Worker supervision: survive crashed, killed and hung pool workers.

``concurrent.futures`` treats a worker that dies (SIGKILL, OOM) as
fatal: every pending future raises ``BrokenProcessPool`` and the
campaign aborts.  :func:`supervise` turns that into a recoverable
event:

* **Respawn + requeue.**  When a pool breaks, the jobs that already
  completed are kept (and checkpointed); only the in-flight and queued
  jobs are resubmitted to a fresh pool.  A job that keeps taking its
  worker down is failed after ``max_requeues`` resubmissions instead of
  looping forever.
* **Heartbeat watchdog.**  The per-job ``SIGALRM`` timeout is enforced
  inside the worker — which means a worker stuck with the signal
  blocked (or stuck in C code) never fires it.  A sidecar thread in the
  *parent* watches wall-clock progress: when no job has completed for
  ``grace`` seconds it SIGKILLs the pool's workers, which surfaces as a
  broken pool and flows through the respawn/requeue path above.
* **Deterministic backoff.**  Respawns are spaced by exponential
  backoff with jitter derived from :func:`repro.runner.derive_seed`
  (never ``random``), so two runs of the same failing campaign behave
  identically.
* **Graceful degradation.**  After ``max_pool_respawns`` consecutive
  pool failures the supervisor stops trusting process isolation and
  runs the remaining jobs in-process (where a plain exception is
  capturable), unless the policy says to fail them instead.

The supervisor only schedules; job semantics stay in
:func:`repro.runner.execute_job`, so results remain byte-identical to
an unsupervised run — crash recovery is an execution detail, not part
of the result.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass

from ..runner.executor import JobContext, execute_job
from ..runner.reduce import job_manifest
from ..runner.spec import derive_seed
from ..telemetry import metrics as _metrics
from ..telemetry.spans import SPANS
from ..telemetry.trace import TRACE

_EMPTY_METRICS = {"counters": {}, "gauges": {}, "histograms": {},
                  "base_labels": {}}


@dataclass(frozen=True)
class SupervisionPolicy:
    """Knobs for pool supervision (all deterministic)."""

    #: Consecutive pool failures tolerated before degrading.
    max_pool_respawns: int = 3
    #: Times one job may be resubmitted after taking a pool down.
    max_requeues: int = 3
    #: Exponential backoff between respawns: base * factor**n, capped.
    backoff_base_s: float = 0.05
    backoff_factor: float = 2.0
    backoff_max_s: float = 2.0
    #: Seed for the backoff jitter (derived, never ``random``).
    jitter_seed: int = 0
    #: Wall-clock stall before the watchdog kills the pool; ``None``
    #: derives it from the job timeout (2x, floor 1 s) and disables the
    #: watchdog entirely when there is no timeout to scale from.
    watchdog_grace_s: float | None = None
    #: Run leftover jobs in-process once respawns are exhausted.
    degrade_in_process: bool = True

    def backoff_s(self, respawn: int) -> float:
        """Delay before the *respawn*-th pool respawn (1-based)."""
        delay = min(self.backoff_base_s
                    * self.backoff_factor ** max(respawn - 1, 0),
                    self.backoff_max_s)
        # 0..25% seed-derived jitter: decorrelates restart stampedes
        # across parallel campaigns without sacrificing replayability.
        jitter = derive_seed(self.jitter_seed, ("backoff", respawn)) \
            % 1000 / 4000
        return delay * (1.0 + jitter)

    def grace_s(self, timeout_s: float | None) -> float | None:
        if self.watchdog_grace_s is not None:
            return self.watchdog_grace_s
        if timeout_s:
            return max(2.0 * timeout_s, 1.0)
        return None


class _Watchdog(threading.Thread):
    """Heartbeat sidecar: wall-clock stall detector for one pool.

    Lives in the parent process and therefore needs no cooperation
    from the workers — ``beat()`` is called on every job completion,
    and ``grace`` seconds of silence while jobs are outstanding gets
    the pool's worker processes SIGKILLed (the resulting
    ``BrokenProcessPool`` is the supervisor's requeue signal).
    """

    def __init__(self, pool: ProcessPoolExecutor, grace_s: float) -> None:
        super().__init__(name="campaign-watchdog", daemon=True)
        self._pool = pool
        self._grace = grace_s
        self._last_beat = time.monotonic()
        self._halt = threading.Event()
        self.fired = False

    def beat(self) -> None:
        self._last_beat = time.monotonic()

    def stop(self) -> None:
        self._halt.set()
        self.join()

    def run(self) -> None:
        interval = max(min(self._grace / 4.0, 0.25), 0.01)
        while not self._halt.wait(interval):
            if time.monotonic() - self._last_beat >= self._grace:
                self.fired = True
                _metrics.REGISTRY.counter(
                    "resilience.watchdog_kills").inc()
                TRACE.emit("watchdog_kill", 0, grace_s=self._grace)
                SPANS.event("supervisor:watchdog_kill", status="error",
                            grace_s=self._grace)
                _kill_pool_workers(self._pool)
                return


def _kill_pool_workers(pool: ProcessPoolExecutor) -> None:
    """SIGKILL every live worker (best effort; ``_processes`` is the
    stdlib's only handle on them)."""
    processes = getattr(pool, "_processes", None) or {}
    for proc in list(processes.values()):
        try:
            proc.kill()
        except (OSError, ValueError, AttributeError):
            pass


def _lost_job_result(spec, requeues: int, *, hung: bool):
    """Terminal failure for a job that exhausted its requeue budget."""
    from ..runner.executor import JobResult

    kind = "hung" if hung else "worker-lost"
    message = (f"job lost its worker {requeues} times"
               + (" (watchdog killed a stalled pool)" if hung else "")
               + "; requeue budget exhausted")
    manifest = job_manifest(spec, JobContext(), dict(_EMPTY_METRICS),
                            status="failure", wall_time_s=0.0,
                            error=message, error_kind=kind,
                            attempts=requeues)
    return JobResult(spec=spec, error=message, error_kind=kind,
                     attempts=requeues, manifest=manifest)


def _one_round(experiment, specs, todo, record, *, n_workers, timeout_s,
               retries, grace_s):
    """One pool lifetime: submit *todo*, harvest until done or broken.

    Returns ``(completed_indices, broken, hung)``.  A ``BaseException``
    from *record* (the chaos interruptor raises ``KeyboardInterrupt``
    there, and a real Ctrl-C lands here too) kills the workers before
    propagating so shutdown never waits on a stalled job.
    """
    completed: list[int] = []
    broken = False
    hung = False
    pool = ProcessPoolExecutor(max_workers=min(n_workers, len(todo)))
    watchdog = _Watchdog(pool, grace_s) if grace_s else None
    try:
        try:
            futures = {pool.submit(execute_job, experiment, specs[i],
                                   timeout_s=timeout_s, retries=retries): i
                       for i in todo}
            if watchdog is not None:
                watchdog.start()
            for future in as_completed(futures):
                try:
                    result = future.result()
                except BrokenProcessPool:
                    broken = True
                    break
                record(futures[future], result)
                completed.append(futures[future])
                if watchdog is not None:
                    watchdog.beat()
        except BrokenProcessPool:      # pool broke during submit
            broken = True
        except BaseException:
            _kill_pool_workers(pool)
            raise
    finally:
        if watchdog is not None:
            watchdog.stop()
            hung = watchdog.fired
        if broken or hung:
            _kill_pool_workers(pool)
        pool.shutdown(wait=True, cancel_futures=True)
    return completed, broken or hung, hung


def supervise(experiment, specs, todo, record, *, n_workers, timeout_s,
              retries, policy: SupervisionPolicy) -> dict:
    """Run *todo* (indices into *specs*) to completion under supervision.

    Calls ``record(index, JobResult)`` exactly once per job, in
    completion order.  Returns supervision statistics (all zero for an
    uneventful campaign) for the campaign manifest's ``outcome``.
    """
    pending = list(todo)
    requeues = {i: 0 for i in pending}
    stats = {"pool_respawns": 0, "requeues": 0, "watchdog_kills": 0,
             "jobs_lost": 0, "degraded_in_process": False}
    grace_s = policy.grace_s(timeout_s)
    respawns = 0
    while pending:
        completed, broken, hung = _one_round(
            experiment, specs, pending, record, n_workers=n_workers,
            timeout_s=timeout_s, retries=retries, grace_s=grace_s)
        done = set(completed)
        pending = [i for i in pending if i not in done]
        if not broken:
            break                      # as_completed drained everything
        if hung:
            stats["watchdog_kills"] += 1
        still_pending = []
        for i in pending:
            requeues[i] += 1
            stats["requeues"] += 1
            _metrics.REGISTRY.counter("resilience.requeues").inc()
            if requeues[i] > policy.max_requeues:
                stats["jobs_lost"] += 1
                TRACE.emit("job_lost", 0, job=specs[i].label,
                           requeues=requeues[i], hung=hung)
                SPANS.event("supervisor:job_lost", status="error",
                            job=specs[i].label, requeues=requeues[i])
                record(i, _lost_job_result(specs[i], requeues[i],
                                           hung=hung))
            else:
                still_pending.append(i)
        pending = still_pending
        if not pending:
            break
        respawns += 1
        stats["pool_respawns"] += 1
        _metrics.REGISTRY.counter("resilience.pool_respawns").inc()
        requeued = [specs[i].label for i in pending]
        TRACE.emit("pool_respawn", 0, respawn=respawns, hung=hung,
                   requeued=requeued)
        SPANS.event("supervisor:pool_respawn", respawn=respawns,
                    hung=hung, requeued=requeued)
        if respawns > policy.max_pool_respawns:
            if policy.degrade_in_process:
                # Process isolation keeps failing: finish in-process,
                # where a plain exception is still capturable and a
                # crash is at least attributable.
                stats["degraded_in_process"] = True
                _metrics.REGISTRY.counter(
                    "resilience.degraded_in_process").inc()
                TRACE.emit("degraded_in_process", 0, jobs=requeued)
                SPANS.event("supervisor:degraded_in_process",
                            status="error", jobs=requeued)
                for i in pending:
                    record(i, execute_job(experiment, specs[i],
                                          timeout_s=timeout_s,
                                          retries=retries))
            else:
                for i in pending:
                    stats["jobs_lost"] += 1
                    TRACE.emit("job_lost", 0, job=specs[i].label,
                               requeues=requeues[i], hung=hung)
                    SPANS.event("supervisor:job_lost", status="error",
                                job=specs[i].label, requeues=requeues[i])
                    record(i, _lost_job_result(specs[i], requeues[i],
                                               hung=hung))
            pending = []
            break
        delay = policy.backoff_s(respawns)
        TRACE.emit("backoff", 0, respawn=respawns,
                   delay_s=round(delay, 6))
        with SPANS.span("supervisor:backoff", respawn=respawns,
                        delay_s=round(delay, 6)):
            time.sleep(delay)
    return stats
