"""Append-only campaign checkpoints: journal every finished job.

A campaign that dies halfway — worker crash, OOM kill, operator
Ctrl-C — used to throw away every completed job.  The checkpoint
journal fixes that: the executor appends one JSON line per finished
:class:`~repro.runner.JobResult`, keyed by a stable SHA-256 fingerprint
of its :class:`~repro.runner.JobSpec`, and a later run passed
``resume=path`` skips every job whose fingerprint is already journaled.
Because jobs are deterministic functions of their specs (the
``--jobs``-independence guarantee of :mod:`repro.runner.spec`), a
resumed campaign's merged manifest is fingerprint-identical to an
uninterrupted run's.

Design points:

* **Append-only JSONL.**  A crash mid-write corrupts at most the last
  line; :func:`load_checkpoint` skips unparsable or foreign lines
  instead of failing, so a torn journal degrades to re-running a job,
  never to losing the campaign.
* **Last record wins.**  Re-journaling a job (e.g. when a resumed
  campaign copies inherited results into a fresh journal) is harmless.
* **Write failures degrade.**  ENOSPC (or any ``OSError``) on append
  is counted (``resilience.checkpoint_write_errors``), warned about
  once, and otherwise ignored — the campaign keeps running and the
  un-journaled job simply re-runs on resume.  The chaos harness
  injects exactly this fault through ``fault_hook``.

One journal file can serve every campaign of a run (the CLI shares one
per ``--results-dir``): fingerprints cover the experiment name, key,
seed, machine and params, so records never collide across campaigns.
"""

from __future__ import annotations

import base64
import hashlib
import json
import pickle
import warnings
from dataclasses import dataclass, field
from pathlib import Path

from ..runner.executor import JobResult
from ..runner.spec import JobSpec
from ..telemetry import metrics as _metrics
from ..telemetry.spans import SPANS
from ..telemetry.trace import TRACE

CHECKPOINT_SCHEMA = "phantom.checkpoint/1"


def spec_fingerprint(spec: JobSpec) -> str:
    """Stable hex fingerprint of one job spec.

    SHA-256 over a canonical JSON rendering (not ``hash()``, which is
    salted per process): equal fingerprints across processes, restarts
    and platforms are what make resume correct.  Param values go
    through ``repr`` so non-JSON scalars (enums, tuples) still key
    stably.
    """
    machine = spec.machine.describe() if spec.machine is not None else None
    blob = json.dumps(
        {"experiment": spec.experiment, "key": [repr(k) for k in spec.key],
         "seed": spec.seed, "machine": machine,
         "params": [[name, repr(value)] for name, value in spec.params]},
        sort_keys=True)
    return hashlib.sha256(blob.encode()).hexdigest()[:32]


@dataclass
class CheckpointRecord:
    """One journaled job outcome (spec fingerprint + serialized result)."""

    fingerprint: str
    label: str
    status: str                       # "success" | "failure"
    value_b64: str | None = None      # pickled+base64 JobResult.value
    error: str | None = None
    error_kind: str | None = None
    attempts: int = 1
    attempt_history: list = field(default_factory=list)
    wall_time_s: float = 0.0
    manifest: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {"schema": CHECKPOINT_SCHEMA, "fingerprint": self.fingerprint,
                "label": self.label, "status": self.status,
                "value_b64": self.value_b64, "error": self.error,
                "error_kind": self.error_kind, "attempts": self.attempts,
                "attempt_history": self.attempt_history,
                "wall_time_s": self.wall_time_s, "manifest": self.manifest}

    @classmethod
    def from_dict(cls, doc: dict) -> "CheckpointRecord":
        return cls(fingerprint=doc["fingerprint"], label=doc.get("label", ""),
                   status=doc.get("status", "failure"),
                   value_b64=doc.get("value_b64"), error=doc.get("error"),
                   error_kind=doc.get("error_kind"),
                   attempts=doc.get("attempts", 1),
                   attempt_history=list(doc.get("attempt_history", ())),
                   wall_time_s=doc.get("wall_time_s", 0.0),
                   manifest=doc.get("manifest", {}))

    @classmethod
    def from_result(cls, spec: JobSpec, result: JobResult
                    ) -> "CheckpointRecord":
        value_b64 = None
        if result.ok:
            value_b64 = base64.b64encode(
                pickle.dumps(result.value)).decode("ascii")
        return cls(fingerprint=spec_fingerprint(spec), label=spec.label,
                   status="success" if result.ok else "failure",
                   value_b64=value_b64, error=result.error,
                   error_kind=result.error_kind, attempts=result.attempts,
                   attempt_history=list(result.attempt_history),
                   wall_time_s=result.wall_time_s, manifest=result.manifest)

    def to_job_result(self, spec: JobSpec) -> JobResult:
        """Rehydrate the journaled outcome against its (re-expanded) spec."""
        value = None
        if self.value_b64 is not None:
            value = pickle.loads(base64.b64decode(self.value_b64))
        return JobResult(spec=spec, value=value, error=self.error,
                         error_kind=self.error_kind, attempts=self.attempts,
                         attempt_history=list(self.attempt_history),
                         wall_time_s=self.wall_time_s,
                         manifest=dict(self.manifest))


class CheckpointWriter:
    """Appends one :class:`CheckpointRecord` line per finished job.

    ``every=N`` flushes the OS buffer after every N appended records
    (1 — the default — journals each job durably as it completes; larger
    values trade a little crash-window for fewer flushes on huge
    campaigns).  ``fault_hook``, when set, runs before each append and
    may raise ``OSError`` — the chaos harness's ENOSPC injection point;
    real and injected write errors take the same degradation path.
    """

    def __init__(self, path, *, every: int = 1, fault_hook=None) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fh = open(self.path, "a", encoding="utf-8")
        self._every = max(1, int(every))
        self._unflushed = 0
        self._fault_hook = fault_hook
        self._warned = False
        self.write_errors = 0

    def append(self, spec: JobSpec, result: JobResult) -> None:
        record = CheckpointRecord.from_result(spec, result)
        line = json.dumps(record.to_dict(), sort_keys=True)
        try:
            if self._fault_hook is not None:
                self._fault_hook(record)
            self._fh.write(line + "\n")
            self._unflushed += 1
            if self._unflushed >= self._every:
                self.flush()
        except OSError as exc:
            self.write_errors += 1
            _metrics.REGISTRY.counter(
                "resilience.checkpoint_write_errors").inc()
            TRACE.emit("checkpoint_write_error", 0, job=record.label,
                       error=str(exc))
            SPANS.event("checkpoint:write_error", status="error",
                        job=record.label, error=str(exc))
            if not self._warned:
                self._warned = True
                warnings.warn(
                    f"checkpoint append to {self.path} failed ({exc}); "
                    "campaign continues, un-journaled jobs re-run on "
                    "resume", RuntimeWarning, stacklevel=2)

    def flush(self) -> None:
        if self._unflushed:
            SPANS.event("checkpoint:flush", records=self._unflushed)
        try:
            self._fh.flush()
        except OSError:
            self.write_errors += 1
        self._unflushed = 0

    def close(self) -> None:
        if not self._fh.closed:
            self.flush()
            self._fh.close()

    def __enter__(self) -> "CheckpointWriter":
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False


def load_checkpoint(path) -> dict[str, CheckpointRecord]:
    """Journal → ``{fingerprint: record}``, last record winning.

    Tolerant by design: a missing file is an empty journal (resuming a
    never-started campaign runs everything), and lines that fail to
    parse or carry a foreign schema are skipped — an interrupted append
    costs one re-run, not the campaign.
    """
    path = Path(path)
    records: dict[str, CheckpointRecord] = {}
    if not path.exists():
        return records
    with open(path, encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                doc = json.loads(line)
            except json.JSONDecodeError:
                continue
            if (not isinstance(doc, dict)
                    or doc.get("schema") != CHECKPOINT_SCHEMA
                    or "fingerprint" not in doc):
                continue
            record = CheckpointRecord.from_dict(doc)
            records[record.fingerprint] = record
    return records
