"""KASLR model: kernel image and physmap randomization.

Search-space sizes follow the paper (§7.1/§7.2, citing TagBleed [38]):
488 possible kernel-image slots at 2 MiB granularity and 25 600 possible
physmap slots.  A fresh :class:`Kaslr` per run models a reboot.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..params import KERNEL_IMAGE_SLOTS, PHYSMAP_SLOTS

#: Base of the kernel-image randomization region (Linux x86-64).
KERNEL_IMAGE_REGION = 0xFFFF_FFFF_8000_0000
#: Kernel image slot granularity.
KERNEL_IMAGE_STRIDE = 2 * 1024 * 1024

#: Base of the physmap (direct map) randomization region.
PHYSMAP_REGION = 0xFFFF_8880_0000_0000
#: Physmap slot granularity (1 GiB).
PHYSMAP_STRIDE = 1 << 30

#: Fixed module area (not randomized in this model; the paper's MDS PoC
#: likewise assumes the gadget address is known).
MODULES_BASE = 0xFFFF_FFFF_C000_0000


@dataclass(frozen=True)
class Kaslr:
    """One boot's randomization decisions."""

    image_slot: int
    physmap_slot: int

    @classmethod
    def randomize(cls, seed: int) -> "Kaslr":
        rng = random.Random(seed)
        return cls(image_slot=rng.randrange(KERNEL_IMAGE_SLOTS),
                   physmap_slot=rng.randrange(PHYSMAP_SLOTS))

    @property
    def image_base(self) -> int:
        return KERNEL_IMAGE_REGION + self.image_slot * KERNEL_IMAGE_STRIDE

    @property
    def physmap_base(self) -> int:
        return PHYSMAP_REGION + self.physmap_slot * PHYSMAP_STRIDE

    @staticmethod
    def image_candidates() -> list[int]:
        """Every possible kernel image base (what the exploit scans)."""
        return [KERNEL_IMAGE_REGION + i * KERNEL_IMAGE_STRIDE
                for i in range(KERNEL_IMAGE_SLOTS)]

    @staticmethod
    def physmap_candidates() -> list[int]:
        """Every possible physmap base."""
        return [PHYSMAP_REGION + i * PHYSMAP_STRIDE
                for i in range(PHYSMAP_SLOTS)]
