"""Loadable kernel modules used by the experiments.

* ``covert_fn`` — a chain of direct branches (paper §6.4's covert-channel
  victim: "a kernel module that performs a number of direct branches.
  We aim to hijack one of these").
* ``mds_read_data`` — the Listing 4 MDS gadget: a bounds check guarding
  a single data load, followed by a direct ``call parse_data`` whose
  BTB entry the attacker hijacks with P3 (paper §7.4).
* ``p3_gadget`` — the disclosure gadget P3 jumps to: shift the byte
  into a cache-line-aligned offset (bits [13:6]) and load.
* ``rev_fn`` — nops followed by ``ret``: the kernel address K used for
  the BTB reverse engineering (paper §6.2).
* ``noise_fn`` — branchy filler used by the mitigation-overhead
  workloads.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..isa import Assembler, Cond, Image, Reg

MODULE_SIZE = 2 * 1024 * 1024

COVERT_FN_OFFSET = 0x100
MDS_FN_OFFSET = 0x800
P3_GADGET_OFFSET = 0xC00
COVERT_LOAD_GADGET_OFFSET = 0xD00
REV_FN_OFFSET = 0xE40
NOISE_FN_OFFSET = 0x1200
BTC_FN_OFFSET = 0x1400
BTC_SAFE_FN_OFFSET = 0x1600

#: Number of direct branches in the covert module's chain.
COVERT_BRANCHES = 8

#: In-bounds length of the MDS module's array.
MDS_ARRAY_LENGTH = 16


@dataclass
class KernelModules:
    """Assembled module text + symbols."""

    image: Image
    symbols: dict[str, int]
    base: int

    def sym(self, name: str) -> int:
        return self.symbols[name]


def build_modules(module_base: int, data_base: int) -> KernelModules:
    """Assemble all modules at *module_base*.

    ``data_base`` is the kernel data region: ``array_length`` lives at
    ``data_base`` and ``array`` at ``data_base + 0x40``.
    """
    image = Image()
    symbols: dict[str, int] = {}

    # --- covert-channel victim: direct branch chain ----------------------
    asm = Assembler(module_base + COVERT_FN_OFFSET)
    asm.label("covert_fn")
    for i in range(COVERT_BRANCHES):
        asm.label(f"covert_branch_{i}")
        asm.jmp(f"covert_hop_{i}")
        asm.label(f"covert_hop_{i}")
        asm.nopl(8)
    asm.ret()
    segment, covert_symbols = asm.finish()
    image.add(segment, covert_symbols)
    symbols.update(covert_symbols)

    # --- MDS gadget (Listing 4) ------------------------------------------
    asm = Assembler(module_base + MDS_FN_OFFSET)
    asm.label("mds_read_data")
    # if (user_index < *array_length)
    asm.mov_ri(Reg.RBX, data_base)
    asm.load(Reg.RBX, Reg.RBX)          # rbx = *array_length
    asm.cmp_rr(Reg.RDI, Reg.RBX)
    asm.jcc(Cond.AE, "mds_out")
    #   data = array[user_index]
    asm.mov_ri(Reg.RCX, data_base + 0x40)
    asm.add_rr(Reg.RCX, Reg.RDI)
    asm.loadb(Reg.RDX, Reg.RCX)
    #   parse_data(data)  — this call's prediction is what P3 hijacks
    asm.label("mds_call_site")
    asm.call("parse_data")
    asm.label("mds_out")
    asm.ret()
    asm.label("parse_data")
    asm.nop()
    asm.ret()
    segment, mds_symbols = asm.finish()
    image.add(segment, mds_symbols)
    symbols.update(mds_symbols)

    # --- P3 disclosure gadget ---------------------------------------------
    # rdx holds the byte to leak; rsi the reload buffer base (kernel VA).
    asm = Assembler(module_base + P3_GADGET_OFFSET)
    asm.label("p3_gadget")
    asm.shl_ri(Reg.RDX, 6)              # byte -> bits [13:6]
    asm.add_rr(Reg.RDX, Reg.RSI)
    asm.loadb(Reg.R9, Reg.RDX)          # the secret-dependent load
    asm.ret()
    segment, p3_symbols = asm.finish()
    image.add(segment, p3_symbols)
    symbols.update(p3_symbols)

    # --- execute-covert-channel gadget (paper §6.4, "Execute") ------------
    # T: "a memory load of the address in register R"; R here is RDI,
    # which syscall arguments reach unclobbered.
    asm = Assembler(module_base + COVERT_LOAD_GADGET_OFFSET)
    asm.label("covert_load_gadget")
    asm.loadb(Reg.R9, Reg.RDI)
    asm.ret()
    segment, cl_symbols = asm.finish()
    image.add(segment, cl_symbols)
    symbols.update(cl_symbols)

    # --- reverse-engineering probe: nops + ret ----------------------------
    asm = Assembler(module_base + REV_FN_OFFSET)
    asm.label("rev_fn")
    asm.nop_sled(64)
    asm.ret()
    segment, rev_symbols = asm.finish()
    image.add(segment, rev_symbols)
    symbols.update(rev_symbols)

    # --- BTI victims: an indirect call dispatcher ---------------------------
    # ``btc_fn`` is the classic Spectre-v2 target: a kernel jmp* whose
    # prediction an attacker can poison (the kernel proper is built
    # retpolined; third-party modules are where such branches survive).
    # ``btc_safe_fn`` is the same dispatcher built with a retpoline.
    asm = Assembler(module_base + BTC_FN_OFFSET)
    asm.label("btc_fn")
    asm.mov_ri(Reg.RAX, module_base + BTC_FN_OFFSET + 0x80)
    asm.jmp_reg(Reg.RAX)
    asm.pad_to(module_base + BTC_FN_OFFSET + 0x80)
    asm.label("btc_default")
    asm.nop()
    asm.ret()
    segment, btc_symbols = asm.finish()
    image.add(segment, btc_symbols)
    symbols.update(btc_symbols)

    from ..analysis.hardening import emit_retpoline

    asm = Assembler(module_base + BTC_SAFE_FN_OFFSET)
    asm.label("btc_safe_fn")
    asm.mov_ri(Reg.RAX, module_base + BTC_FN_OFFSET + 0x80)
    emit_retpoline(asm, Reg.RAX)
    segment, safe_symbols = asm.finish()
    image.add(segment, safe_symbols)
    symbols.update(safe_symbols)

    # --- branchy filler ----------------------------------------------------
    asm = Assembler(module_base + NOISE_FN_OFFSET)
    asm.label("noise_fn")
    asm.mov_ri(Reg.R10, 8)
    asm.label("noise_loop")
    asm.sub_ri(Reg.R10, 1)
    asm.jcc(Cond.NE, "noise_loop")
    asm.ret()
    segment, noise_symbols = asm.finish()
    image.add(segment, noise_symbols)
    symbols.update(noise_symbols)

    return KernelModules(image=image, symbols=symbols, base=module_base)
