"""Kernel/OS model: KASLR, kernel text and modules, mitigations, Machine."""

from .kaslr import (KERNEL_IMAGE_REGION, KERNEL_IMAGE_STRIDE, Kaslr,
                    MODULES_BASE, PHYSMAP_REGION, PHYSMAP_STRIDE)
from .layout import (DISCLOSURE_GADGET_OFFSET, FDGET_POS_OFFSET, IMAGE_SIZE,
                     SYS_BTC, SYS_BTC_SAFE, SYS_COVERT, SYS_GETPID, SYS_MDS,
                     SYS_NOISE, SYS_READV, SYS_REV, TASK_PID_NR_NS_OFFSET)
from .machine import (Machine, MachineSpec, SECRET_OFFSET, SECRET_SIZE,
                      USER_STUB)
from .mitigations import (DEFAULT_MITIGATIONS, HARDENED, IBPB_HARDENED,
                          MITIGATIONS, Mitigation, MitigationConfig,
                          mitigation_by_name, mitigation_names)
from .modules import COVERT_BRANCHES, MDS_ARRAY_LENGTH

__all__ = [
    "COVERT_BRANCHES",
    "DEFAULT_MITIGATIONS",
    "DISCLOSURE_GADGET_OFFSET",
    "FDGET_POS_OFFSET",
    "HARDENED",
    "IBPB_HARDENED",
    "IMAGE_SIZE",
    "KERNEL_IMAGE_REGION",
    "KERNEL_IMAGE_STRIDE",
    "Kaslr",
    "MDS_ARRAY_LENGTH",
    "MITIGATIONS",
    "MODULES_BASE",
    "Machine",
    "MachineSpec",
    "Mitigation",
    "MitigationConfig",
    "PHYSMAP_REGION",
    "PHYSMAP_STRIDE",
    "SECRET_OFFSET",
    "SECRET_SIZE",
    "SYS_BTC",
    "SYS_BTC_SAFE",
    "SYS_COVERT",
    "SYS_GETPID",
    "SYS_MDS",
    "SYS_NOISE",
    "SYS_READV",
    "SYS_REV",
    "TASK_PID_NR_NS_OFFSET",
    "USER_STUB",
    "mitigation_by_name",
    "mitigation_names",
]
