"""The Machine: CPU + memory + kernel, booted with KASLR and mitigations.

This is the top-level facade experiments run against.  It provides:

* the victim OS: syscall dispatch into kernel text whose gadgets sit at
  the paper's image offsets, kernel modules, KASLR-randomized layout,
  mitigations;
* the unprivileged-attacker runtime: map user pages, write code, run
  programs, issue syscalls, flush lines and perform timed accesses.

Everything the attacker does either executes on the simulated CPU or is
a documented runtime shortcut (timed loads/fetches) that touches the
caches exactly as the equivalent instruction sequence would.
"""

from __future__ import annotations

import random
from dataclasses import asdict, dataclass, replace

from ..errors import HaltRequested, PageFault, ReproError
from ..isa import Assembler, Image, Reg
from ..memory import MemorySystem
from ..params import HUGE_PAGE_SIZE, PAGE_SIZE, canonical
from ..pipeline import CPU, Microarch
from ..telemetry import metrics as _metrics
from ..telemetry.trace import TRACE as _TRACE

_REG = _metrics.REGISTRY
from .kaslr import Kaslr, MODULES_BASE
from .layout import (DATA_SIZE, IMAGE_SIZE, KernelLayout, build_kernel_text)
from .mitigations import DEFAULT_MITIGATIONS, MitigationConfig
from .modules import (KernelModules, MDS_ARRAY_LENGTH, MODULE_SIZE,
                      build_modules)

#: Fixed user-space addresses of the attacker process.
USER_STUB = 0x0000_0000_0040_0000       # syscall trampoline
USER_STACK_TOP = 0x0000_7FFF_FF00_0000
USER_STACK_SIZE = 64 * PAGE_SIZE
KERNEL_STACK = 0xFFFF_FFFF_A000_0000
KERNEL_STACK_SIZE = 4 * PAGE_SIZE

#: Offset of the 4096-byte random secret inside the kernel data region.
SECRET_OFFSET = 0x1000
SECRET_SIZE = 4096


@dataclass(frozen=True)
class MachineSpec:
    """Declarative, picklable description of one :class:`Machine` boot.

    Experiments pass specs instead of keyword sprawl at call sites, and
    — because a spec is plain data keyed by the µarch *name* — a spec
    crosses the process-pool boundary of :mod:`repro.runner` where a
    booted :class:`Machine` (caches, CPU, mapped memory) cannot.  Two
    boots of the same spec are bit-identical machines.
    """

    uarch: str
    phys_mem: int = 2 << 30
    kaslr_seed: int = 0
    rng_seed: int = 0
    mitigations: MitigationConfig = DEFAULT_MITIGATIONS
    sibling_load: bool = False
    syscall_noise_evictions: int = 2

    def with_(self, **changes) -> "MachineSpec":
        return replace(self, **changes)

    def boot(self) -> "Machine":
        return Machine.from_spec(self)

    def describe(self) -> dict:
        """Manifest ``config`` block for this spec (same shape as
        :func:`repro.telemetry.manifest.machine_config`, no boot
        required)."""
        from ..pipeline import by_name

        uarch = by_name(self.uarch)
        return {
            "uarch": uarch.name,
            "model": uarch.model,
            "vendor": uarch.vendor,
            "clock_ghz": uarch.clock_ghz,
            "kaslr_seed": self.kaslr_seed,
            "mitigations": {k: bool(v)
                            for k, v in asdict(self.mitigations).items()},
            "phys_mem_bytes": self.phys_mem,
        }


class Machine:
    """A booted system: hardware model + kernel + one attacker process."""

    def __init__(self, uarch: Microarch, *, phys_mem: int = 2 << 30,
                 kaslr_seed: int = 0,
                 mitigations: MitigationConfig = DEFAULT_MITIGATIONS,
                 rng_seed: int = 0, sibling_load: bool = False,
                 syscall_noise_evictions: int = 2) -> None:
        self.uarch = uarch
        self.kaslr_seed = kaslr_seed
        self.rng_seed = rng_seed
        self.rng = random.Random(rng_seed)
        self.mem = MemorySystem(phys_mem, hierarchy=uarch.hierarchy,
                                rng=self.rng)
        self.cpu = CPU(uarch, self.mem, rng=self.rng)
        self.kaslr = Kaslr.randomize(kaslr_seed)
        self._m_syscalls = _metrics.counter("machine_syscalls")
        self._m_noise = _metrics.counter("machine_noise_evictions")
        self.mitigations = mitigations
        self.sibling_load = sibling_load
        self.syscall_noise_evictions = syscall_noise_evictions
        self._saved_user_pc = 0
        self._saved_user_rsp = 0

        self._boot()

    @classmethod
    def from_spec(cls, spec: MachineSpec) -> "Machine":
        """Boot the machine a :class:`MachineSpec` describes."""
        from ..pipeline import by_name

        return cls(by_name(spec.uarch), phys_mem=spec.phys_mem,
                   kaslr_seed=spec.kaslr_seed, rng_seed=spec.rng_seed,
                   mitigations=spec.mitigations,
                   sibling_load=spec.sibling_load,
                   syscall_noise_evictions=spec.syscall_noise_evictions)

    # ------------------------------------------------------------------
    # boot
    # ------------------------------------------------------------------

    def _boot(self) -> None:
        mem = self.mem
        image_base = self.kaslr.image_base
        self.data_base = image_base + IMAGE_SIZE

        self.modules: KernelModules = build_modules(MODULES_BASE,
                                                    self.data_base)
        self.kernel: KernelLayout = build_kernel_text(
            image_base, self.modules.symbols, self.data_base)

        # Kernel text: one executable supervisor range; code copied in.
        image_pa = mem.frames.alloc(IMAGE_SIZE)
        mem.aspace.map_linear(image_base, image_pa, IMAGE_SIZE,
                              user=False, nx=False)
        for segment in self.kernel.image.segments:
            mem.phys.write(image_pa + (segment.base - image_base),
                           segment.data)

        # Kernel data: NX supervisor range after the text.
        data_pa = mem.frames.alloc(DATA_SIZE)
        mem.aspace.map_linear(self.data_base, data_pa, DATA_SIZE,
                              user=False, nx=True)
        mem.phys.write_int(data_pa, 8, MDS_ARRAY_LENGTH)
        secret = bytes(self.rng.randrange(256) for _ in range(SECRET_SIZE))
        mem.phys.write(data_pa + SECRET_OFFSET, secret)
        self._secret = secret

        # Modules: executable supervisor region at a fixed base.
        module_pa = mem.frames.alloc(MODULE_SIZE)
        mem.aspace.map_linear(MODULES_BASE, module_pa, MODULE_SIZE,
                              user=False, nx=False)
        for segment in self.modules.image.segments:
            mem.phys.write(module_pa + (segment.base - MODULES_BASE),
                           segment.data)

        # physmap: the whole of physical memory, NX, at a randomized base.
        mem.aspace.map_linear(self.kaslr.physmap_base, 0, mem.phys.size,
                              user=False, nx=True)

        # Kernel stack.
        mem.map_anonymous(KERNEL_STACK, KERNEL_STACK_SIZE, user=False,
                          nx=True)

        # Attacker syscall stub: ``syscall ; hlt``.
        stub = Assembler(USER_STUB)
        stub.syscall()
        stub.hlt()
        mem.load_image(stub.image(), user=True)

        # User stack.
        mem.map_anonymous(USER_STACK_TOP - USER_STACK_SIZE, USER_STACK_SIZE,
                          user=True, nx=True)
        self.cpu.state.write(Reg.RSP, USER_STACK_TOP - 64)

        # Wire traps and mitigations.
        self.cpu.trap_handler = self._trap
        self.cpu.msr.suppress_bp_on_non_br = \
            self.mitigations.suppress_bp_on_non_br
        self.cpu.msr.auto_ibrs = self.mitigations.auto_ibrs

    # ------------------------------------------------------------------
    # traps
    # ------------------------------------------------------------------

    def _trap(self, cpu: CPU, trap: str, instr, result) -> None:
        if trap == "syscall":
            if cpu.kernel_mode:
                raise ReproError("nested syscall")
            self._saved_user_pc = result.next_pc
            self._saved_user_rsp = cpu.state.read(Reg.RSP)
            cpu.kernel_mode = True
            cpu.state.write(Reg.RSP, KERNEL_STACK + KERNEL_STACK_SIZE - 64)
            cpu.cycles += self.uarch.syscall_entry_cost
            cpu.pmc.add("syscalls")
            if _REG.enabled:
                self._m_syscalls.value += 1
            if _TRACE.enabled:
                _TRACE.emit("syscall", cpu.cycles,
                            nr=cpu.state.read(Reg.RAX))
            if self.mitigations.ibpb_on_kernel_entry:
                cpu.bpu.ibpb()
            if self.mitigations.rsb_stuffing_on_entry:
                # §2.4: overwrite user-poisoned return predictions with
                # a fenced kernel pad.
                cpu.bpu.rsb.clear()
                pad = self.kernel.sym("rsb_stuff_pad")
                for _ in range(cpu.bpu.rsb.depth):
                    cpu.bpu.rsb.push(pad)
                cpu.cycles += 2 * cpu.bpu.rsb.depth
            self._inject_syscall_noise()
            cpu.pc = self.kernel.sym("syscall_entry")
            return
        if trap == "sysret":
            if not cpu.kernel_mode:
                raise ReproError("sysret from user mode")
            cpu.kernel_mode = False
            cpu.state.write(Reg.RSP, self._saved_user_rsp)
            cpu.cycles += self.uarch.syscall_exit_cost
            cpu.pc = self._saved_user_pc
            return
        raise ReproError(f"unexpected trap {trap!r} at {cpu.pc:#x}")

    def _inject_syscall_noise(self) -> None:
        """Model the syscall path thrashing I-cache sets beyond the code
        we simulate (the noise §7.3 fights): each eviction removes one
        resident line from a random L1I set.  A busy sibling thread
        makes the machine's timing behaviour more uniform, which the
        paper exploits; here it slightly reduces the thrash."""
        n = self.syscall_noise_evictions
        if self.sibling_load:
            n = max(0, n - 1)
        l1i = self.mem.hier.l1i
        if _REG.enabled:
            self._m_noise.value += n
        for _ in range(n):
            set_index = self.rng.randrange(l1i.num_sets)
            resident = l1i.resident_lines(set_index)
            if resident:
                l1i.invalidate(self.rng.choice(resident))

    # ------------------------------------------------------------------
    # attacker runtime
    # ------------------------------------------------------------------

    @property
    def cycles(self) -> int:
        return self.cpu.cycles

    def seconds(self) -> float:
        """Simulated wall-clock time since boot."""
        return self.cpu.cycles / (self.uarch.clock_ghz * 1e9)

    def idle(self, cycles: int) -> None:
        """Let the core sit quiescent for *cycles* cycles (e.g. waiting
        on a timer): delegates to :meth:`CPU.idle`, which either ticks
        or event-skips depending on the fast-path configuration —
        identically either way."""
        self.cpu.idle(cycles)

    @property
    def timing_jitter_sigma(self) -> float:
        """Timer noise level; a loaded sibling stabilises timing
        (paper §6.4 stresses the sibling with ``stress -c 10``)."""
        return 1.0 if self.sibling_load else 2.0

    def map_user(self, va: int, size: int, *, nx: bool = False) -> None:
        """mmap: anonymous user memory."""
        self.mem.map_anonymous(va, size, user=True, nx=nx)

    def map_user_huge(self, va: int, *, nx: bool = True) -> None:
        """mmap a 2 MiB transparent huge page (physically contiguous)."""
        pa = self.mem.frames.alloc_huge()
        self.mem.aspace.map_range(va, pa, HUGE_PAGE_SIZE, user=True,
                                  nx=nx, huge=True)

    def alloc_filler_huge_pages(self, count: int) -> None:
        """Consume huge pages to re-randomize later allocations'
        physical addresses (Table 5's re-randomization step)."""
        for _ in range(count):
            self.mem.frames.alloc_huge()

    def write_user(self, va: int, data: bytes) -> None:
        """Write into user memory (and invalidate stale decodes)."""
        pa = self.mem.aspace.translate(va, write=True, user_mode=True)
        self.mem.phys.write(pa, data)
        self.cpu.invalidate_code(va, va + len(data))

    def load_user_image(self, image: Image, *, nx: bool = False) -> None:
        self.mem.load_image(image, user=True, nx=nx)

    def run_user(self, pc: int, *, max_instructions: int = 200_000,
                 regs: dict[Reg, int] | None = None) -> None:
        """Run attacker code at *pc* until ``hlt``.

        PageFaults in user mode propagate to the caller (the attacker
        catches them, e.g. when training with kernel-address targets).
        """
        self.cpu.state.write(Reg.RSP, USER_STACK_TOP - 64)
        if regs:
            for reg, value in regs.items():
                self.cpu.state.write(reg, value)
        try:
            self.cpu.run(pc, max_instructions=max_instructions)
        except HaltRequested:
            return
        except PageFault:
            if self.cpu.kernel_mode:
                raise ReproError("kernel page fault (oops)") from None
            raise

    def syscall(self, nr: int, rdi: int = 0, rsi: int = 0,
                rdx: int = 0, *, max_instructions: int = 200_000) -> int:
        """Issue a system call through the user stub; returns RAX."""
        self.cpu.state.write(Reg.RAX, nr)
        self.cpu.state.write(Reg.RDI, rdi)
        self.cpu.state.write(Reg.RSI, rsi)
        self.cpu.state.write(Reg.RDX, rdx)
        self.run_user(USER_STUB, max_instructions=max_instructions)
        return self.cpu.state.read(Reg.RAX)

    # -- timing / cache primitives (attacker-visible) ----------------------

    def clflush(self, va: int) -> None:
        self.mem.clflush(va)
        self.cpu.cycles += 40

    def timed_user_load(self, va: int) -> int:
        """Execute the equivalent of ``rdtsc; mov r,[va]; rdtsc``.

        Returns the load latency in cycles (no jitter — callers add
        timer noise via :class:`repro.sidechannel.Timer`)."""
        _, cyc = self.mem.read_data(canonical(va), 8, user_mode=True)
        self.cpu.cycles += cyc + 2
        return cyc

    def timed_user_exec(self, va: int) -> int:
        """Time an instruction fetch at *va* (Figure 5 A's probe)."""
        _, cyc = self.mem.fetch_code(canonical(va), 8, user_mode=True)
        self.cpu.cycles += cyc + 2
        return cyc

    def user_touch(self, va: int) -> None:
        """Untimed user load (prime traffic)."""
        _, cyc = self.mem.read_data(canonical(va), 8, user_mode=True)
        self.cpu.cycles += cyc

    def user_exec_touch(self, va: int) -> None:
        """Untimed user instruction fetch (I-cache prime traffic)."""
        _, cyc = self.mem.fetch_code(canonical(va), 8, user_mode=True)
        self.cpu.cycles += cyc

    # -- test-only introspection -------------------------------------------

    def secret_bytes(self) -> bytes:
        """Ground-truth secret (verification of leaks in benches/tests)."""
        return self._secret

    @property
    def secret_va(self) -> int:
        return self.data_base + SECRET_OFFSET
