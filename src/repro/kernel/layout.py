"""Kernel text: syscall dispatcher and the paper's victim functions.

The three code snippets the exploits hinge on sit at the exact kernel
image offsets the paper reports:

* ``__task_pid_nr_ns`` prologue (Listing 1) at ``image + 0xf6520`` —
  the ``getpid()`` speculation site;
* the physmap disclosure gadget (Listing 3,
  ``mov r12, [r12+0xbe0]``) at ``image + 0x41da52``;
* ``__fdget_pos`` (Listing 2) at ``image + 0x41db60`` — the ``readv()``
  speculation site (its ``call``).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..isa import Assembler, Cond, Image, Reg

#: Total bytes of the mapped kernel text region (candidate fetch targets
#: anywhere inside the image must be executable).
IMAGE_SIZE = 8 * 1024 * 1024
#: Kernel data (array_length, array, secrets) directly after the text.
DATA_SIZE = 2 * 1024 * 1024

# Paper-reported offsets.
TASK_PID_NR_NS_OFFSET = 0xF6520       # Listing 1
DISCLOSURE_GADGET_OFFSET = 0x41DA52   # Listing 3
FDGET_POS_OFFSET = 0x41DB60           # Listing 2

# Internal layout.
ENTRY_OFFSET = 0x1000
GETPID_HANDLER_OFFSET = 0xF6400
READV_HANDLER_OFFSET = 0x41D900
FDGET_INNER_OFFSET = 0x41DD00

# Syscall numbers (Linux x86-64 where applicable).
SYS_READV = 19
SYS_GETPID = 39
SYS_COVERT = 0x200        # covert-channel module (paper §6.4)
SYS_MDS = 0x201           # MDS-gadget module (paper §7.4)
SYS_REV = 0x202           # nops+ret module (paper §6.2)
SYS_NOISE = 0x203         # branchy filler (workloads)
SYS_BTC = 0x204           # indirect-branch module (Spectre-v2 victim)
SYS_BTC_SAFE = 0x205      # same dispatcher, retpolined

ENOSYS = -38 & ((1 << 64) - 1)


@dataclass
class KernelLayout:
    """Assembled kernel text plus its symbol table (absolute VAs)."""

    image: Image
    symbols: dict[str, int]
    base: int

    def sym(self, name: str) -> int:
        return self.symbols[name]

    def offset_of(self, name: str) -> int:
        return self.symbols[name] - self.base


def reference_offsets() -> dict[str, int]:
    """Image-relative offsets of every kernel symbol.

    The kernel binary is public: attackers know symbol offsets and only
    the randomized base is secret.  Computed from a reference build.
    """
    from .kaslr import MODULES_BASE
    from .modules import build_modules

    base = 0xFFFF_FFFF_8000_0000
    modules = build_modules(MODULES_BASE, base + IMAGE_SIZE)
    layout = build_kernel_text(base, modules.symbols, base + IMAGE_SIZE)
    return {name: va - base for name, va in layout.symbols.items()}


def build_kernel_text(image_base: int, module_symbols: dict[str, int],
                      data_base: int) -> KernelLayout:
    """Assemble the kernel text for a given randomized *image_base*.

    ``module_symbols`` provides the entry points of the loaded kernel
    modules (covert/MDS/rev); ``data_base`` is the kernel data region
    holding ``array_length`` and ``array``.
    """
    image = Image()
    symbols: dict[str, int] = {}

    # --- syscall entry / dispatcher -------------------------------------
    asm = Assembler(image_base + ENTRY_OFFSET)
    asm.label("syscall_entry")
    for nr, label in ((SYS_GETPID, "h_getpid"), (SYS_READV, "h_readv"),
                      (SYS_COVERT, "h_covert"), (SYS_MDS, "h_mds"),
                      (SYS_REV, "h_rev"), (SYS_NOISE, "h_noise"),
                      (SYS_BTC, "h_btc"), (SYS_BTC_SAFE, "h_btc_safe")):
        asm.cmp_ri(Reg.RAX, nr)
        asm.jcc(Cond.E, label)
    asm.mov_ri(Reg.RAX, ENOSYS)
    asm.sysret()

    asm.label("h_getpid")
    asm.call(image_base + TASK_PID_NR_NS_OFFSET)
    asm.sysret()

    asm.label("h_readv")
    # The tooling from previous work found RSI (the 2nd argument)
    # reaches R12 by the time __fdget_pos is called (paper §7.2).
    asm.mov_rr(Reg.R12, Reg.RSI)
    asm.call(image_base + FDGET_POS_OFFSET)
    asm.mov_ri(Reg.RAX, 0)
    asm.sysret()

    asm.label("h_covert")
    asm.call(module_symbols["covert_fn"])
    asm.sysret()

    asm.label("h_mds")
    asm.call(module_symbols["mds_read_data"])
    asm.mov_ri(Reg.RAX, 0)
    asm.sysret()

    asm.label("h_rev")
    asm.call(module_symbols["rev_fn"])
    asm.sysret()

    asm.label("h_noise")
    asm.call(module_symbols["noise_fn"])
    asm.sysret()

    asm.label("h_btc")
    asm.call(module_symbols["btc_fn"])
    asm.sysret()

    asm.label("h_btc_safe")
    asm.call(module_symbols["btc_safe_fn"])
    asm.sysret()

    # Target of RSB stuffing: a fenced pad transient returns die in.
    asm.label("rsb_stuff_pad")
    asm.lfence()
    asm.ret()

    segment, entry_symbols = asm.finish()
    image.add(segment, entry_symbols)
    symbols.update(entry_symbols)

    # --- getpid tail: __task_pid_nr_ns (Listing 1) -----------------------
    asm = Assembler(image_base + TASK_PID_NR_NS_OFFSET)
    asm.label("__task_pid_nr_ns")
    asm.nopl(8)               # Listing 1, line 1: the speculation site
    asm.push(Reg.RBP)         # line 2
    asm.mov_rr(Reg.RBP, Reg.RSP)  # line 3
    asm.mov_ri(Reg.RAX, 1234)
    asm.pop(Reg.RBP)
    asm.ret()
    segment, pid_symbols = asm.finish()
    image.add(segment, pid_symbols)
    symbols.update(pid_symbols)

    # --- disclosure gadget (Listing 3) + __fdget_pos (Listing 2) --------
    asm = Assembler(image_base + DISCLOSURE_GADGET_OFFSET)
    asm.label("physmap_gadget")
    asm.load(Reg.R12, Reg.R12, 0xBE0)   # mov r12, QWORD PTR [r12+0xbe0]
    asm.ret()
    asm.pad_to(image_base + FDGET_POS_OFFSET)
    asm.label("__fdget_pos")
    asm.nopl(8)                          # Listing 2, line 1
    asm.push(Reg.RBP)                    # line 2
    asm.mov_ri(Reg.RSI, 0x4000)          # line 3
    asm.mov_rr(Reg.RBP, Reg.RSP)         # line 4
    asm.sub_ri(Reg.RSP, 8)               # line 5
    asm.label("fdget_call_site")
    asm.call(image_base + FDGET_INNER_OFFSET)   # line 6: speculation site
    asm.add_ri(Reg.RSP, 8)
    asm.pop(Reg.RBP)
    asm.ret()
    asm.pad_to(image_base + FDGET_INNER_OFFSET)
    asm.label("fdget_inner")
    asm.nop()
    asm.ret()
    segment, fdget_symbols = asm.finish()
    image.add(segment, fdget_symbols)
    symbols.update(fdget_symbols)

    return KernelLayout(image=image, symbols=symbols, base=image_base)
