"""Mitigation configuration (paper §2.4, §6.3, §8).

The threat model assumes a default hardened configuration: retpolines
and untrain-ret are considered deployed (the kernel text contains no
exploitable *indirect* branches — all syscall dispatch here is compiled
to compare+direct-branch chains, which is what retpolines achieve), and
the hardware mitigations are toggles the experiments flip:

* ``suppress_bp_on_non_br`` — AMD MSR 0xC00110E3 bit (Zen 2+): prevents
  branch prediction on non-branches.  The paper shows it only stops
  transient *execute* (O4).
* ``auto_ibrs`` — Zen 4: restricts cross-privilege prediction use — but
  only after instruction fetch/decode (O5).
* ``ibpb_on_kernel_entry`` — flush all predictions when entering the
  kernel.  Expensive, but it stops P1/P2/P3 (§8.2).
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class MitigationConfig:
    """Software/hardware mitigation switches for one boot."""

    suppress_bp_on_non_br: bool = False
    auto_ibrs: bool = False
    ibpb_on_kernel_entry: bool = False
    #: RSB stuffing on kernel entry (§2.4): overwrite user-poisoned
    #: return predictions with a fenced kernel pad.
    rsb_stuffing_on_entry: bool = False
    # Descriptive flags (threat-model documentation; both are modelled
    # structurally: the kernel has no indirect branches to hijack and
    # returns are not trained cross-privilege in these exploits).
    retpolines: bool = True
    untrain_ret: bool = True

    def with_(self, **changes) -> "MitigationConfig":
        return replace(self, **changes)


#: The paper's baseline: default Ubuntu with state-of-the-art Spectre
#: defenses (§3) — but the Phantom-specific MSR bits off.
DEFAULT_MITIGATIONS = MitigationConfig()

#: Everything AMD recommends switched on.
HARDENED = MitigationConfig(suppress_bp_on_non_br=True, auto_ibrs=True)

#: The big hammer (§8.2).
IBPB_HARDENED = MitigationConfig(suppress_bp_on_non_br=True, auto_ibrs=True,
                                 ibpb_on_kernel_entry=True)
