"""Mitigation configuration (paper §2.4, §6.3, §8).

The threat model assumes a default hardened configuration: retpolines
and untrain-ret are considered deployed (the kernel text contains no
exploitable *indirect* branches — all syscall dispatch here is compiled
to compare+direct-branch chains, which is what retpolines achieve), and
the hardware mitigations are toggles the experiments flip:

* ``suppress_bp_on_non_br`` — AMD MSR 0xC00110E3 bit (Zen 2+): prevents
  branch prediction on non-branches.  The paper shows it only stops
  transient *execute* (O4).
* ``auto_ibrs`` — Zen 4: restricts cross-privilege prediction use — but
  only after instruction fetch/decode (O5).
* ``ibpb_on_kernel_entry`` — flush all predictions when entering the
  kernel.  Expensive, but it stops P1/P2/P3 (§8.2).

On top of the raw :class:`MitigationConfig` switches, the module keeps
an **enumerable registry** of named mitigation settings
(:data:`MITIGATIONS`): the unit the leakage contracts of
:mod:`repro.fuzz.contracts`, the ``repro fuzz --mitigation`` flag and
the mitigation test-suite all speak.  Every entry documents exactly
which frontend/BTB behaviours it toggles, and the tests in
``tests/kernel/test_mitigations.py`` hold each entry to that claim.
"""

from __future__ import annotations

from dataclasses import dataclass, fields, replace


@dataclass(frozen=True)
class MitigationConfig:
    """Software/hardware mitigation switches for one boot."""

    suppress_bp_on_non_br: bool = False
    auto_ibrs: bool = False
    ibpb_on_kernel_entry: bool = False
    #: RSB stuffing on kernel entry (§2.4): overwrite user-poisoned
    #: return predictions with a fenced kernel pad.
    rsb_stuffing_on_entry: bool = False
    # Descriptive flags (threat-model documentation; both are modelled
    # structurally: the kernel has no indirect branches to hijack and
    # returns are not trained cross-privilege in these exploits).
    retpolines: bool = True
    untrain_ret: bool = True

    def with_(self, **changes) -> "MitigationConfig":
        return replace(self, **changes)

    def toggled(self) -> tuple[str, ...]:
        """Names of the switches this config turns on relative to the
        paper's baseline (the descriptive flags are always-on in both
        and never appear here)."""
        baseline = MitigationConfig()
        return tuple(f.name for f in fields(self)
                     if getattr(self, f.name) != getattr(baseline, f.name))


#: The paper's baseline: default Ubuntu with state-of-the-art Spectre
#: defenses (§3) — but the Phantom-specific MSR bits off.
DEFAULT_MITIGATIONS = MitigationConfig()

#: Everything AMD recommends switched on.
HARDENED = MitigationConfig(suppress_bp_on_non_br=True, auto_ibrs=True)

#: The big hammer (§8.2).
IBPB_HARDENED = MitigationConfig(suppress_bp_on_non_br=True, auto_ibrs=True,
                                 ibpb_on_kernel_entry=True)


@dataclass(frozen=True)
class Mitigation:
    """One named, documented mitigation setting.

    ``toggles`` is the registry's *claim*: the exact set of
    :class:`MitigationConfig` switches this mitigation arms.  The test
    suite asserts ``config.toggled() == toggles`` for every entry, so a
    silently-widened config can never hide behind a familiar name.
    """

    name: str
    config: MitigationConfig
    toggles: tuple[str, ...]
    #: Which machinery the switch acts on (documentation + test spec).
    mechanism: str
    description: str

    def to_dict(self) -> dict:
        return {"name": self.name, "toggles": list(self.toggles),
                "mechanism": self.mechanism,
                "description": self.description}


def _entry(name: str, mechanism: str, description: str,
           **switches) -> Mitigation:
    config = MitigationConfig(**switches)
    return Mitigation(name=name, config=config,
                      toggles=config.toggled(), mechanism=mechanism,
                      description=description)


#: The enumerable mitigation registry, in escalation order.
MITIGATIONS: tuple[Mitigation, ...] = (
    _entry("none", "—",
           "Paper baseline: retpolines + untrain-ret only; every "
           "Phantom-specific switch off."),
    _entry("suppress-bp", "frontend (decode gate)",
           "SuppressBPOnNonBr MSR bit: predictions on non-branch bytes "
           "never reach transient execute; fetch and decode still "
           "happen (O4).",
           suppress_bp_on_non_br=True),
    _entry("auto-ibrs", "frontend (privilege gate)",
           "AutoIBRS (Zen 4): cross-privilege predictions are refused, "
           "but only after the predicted target was fetched and "
           "decoded (O5).",
           auto_ibrs=True),
    _entry("ibpb", "BTB (full predictor flush)",
           "IBPB on every kernel entry: all branch predictions — "
           "including injected ones — are flushed before kernel code "
           "runs (§8.2).",
           ibpb_on_kernel_entry=True),
    _entry("rsb-stuffing", "RSB (return predictor overwrite)",
           "RSB stuffing on kernel entry: user-poisoned return "
           "predictions are overwritten with a fenced kernel pad "
           "(§2.4); costs 2 cycles per stuffed slot.",
           rsb_stuffing_on_entry=True),
    _entry("hardened", "frontend (both MSR gates)",
           "Everything AMD recommends: SuppressBPOnNonBr + AutoIBRS.",
           suppress_bp_on_non_br=True, auto_ibrs=True),
    _entry("ibpb-hardened", "frontend + BTB",
           "The hardened MSR setting plus IBPB on kernel entry.",
           suppress_bp_on_non_br=True, auto_ibrs=True,
           ibpb_on_kernel_entry=True),
)

_BY_NAME = {m.name: m for m in MITIGATIONS}


def mitigation_names() -> tuple[str, ...]:
    return tuple(m.name for m in MITIGATIONS)


def mitigation_by_name(name: str) -> Mitigation:
    """Resolve a registry entry, separator- and case-insensitive
    (``SuppressBP``/``suppress_bp``/``suppress-bp`` all match)."""
    key = name.strip().lower().replace("_", "-").replace(" ", "-")
    try:
        return _BY_NAME[key]
    except KeyError:
        known = ", ".join(mitigation_names())
        raise ValueError(
            f"unknown mitigation {name!r} (one of: {known})") from None
