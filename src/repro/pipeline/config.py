"""Microarchitecture models for the eight CPUs the paper evaluates.

The decisive quantity for Phantom is a latency race inside the
frontend: after the BPU redirects fetch to a (mis)predicted target, the
target's bytes are fetched and decoded unconditionally — the decoder
only *then* notices that the branch source does not match the
prediction's semantics and issues a frontend resteer.  Whether the
target's µops reach the execute stage before the resteer lands is what
separates AMD Zen 1/2 (transient execute, observation O3) from
Zen 3/4 and Intel (transient fetch + decode only, observations O1/O2).

Per model we therefore expose the two race latencies and derive::

    phantom_exec_uops = max(0, frontend_resteer_latency - issue_latency)

Zen 1/2 lose the race to issue by 4 µops — enough to dispatch a short
disclosure gadget ending in one load (primitives P2/P3).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..frontend.btb import (BTBIndexing, ZEN1_TAG_FUNCTIONS,
                            ZEN3_BTB_FUNCTIONS)
from ..memory.hierarchy import HierarchyParams


@dataclass(frozen=True)
class Microarch:
    """Parameters of one simulated CPU model."""

    name: str                    # microarchitecture ("Zen 2")
    model: str                   # tested part ("AMD EPYC 7252")
    vendor: str                  # "amd" | "intel"
    clock_ghz: float
    btb: BTBIndexing
    hierarchy: HierarchyParams = field(default_factory=HierarchyParams)

    # Frontend geometry / latencies (cycles).
    fetch_block: int = 32
    fetch_latency: int = 3           # I-cache block -> IBQ
    decode_latency: int = 3          # IBQ -> µop queue
    issue_latency: int = 4           # µop queue -> first issue
    frontend_resteer_latency: int = 3  # source decode -> redirected fetch

    # Backend speculation.
    backend_window_uops: int = 64    # classic Spectre window depth

    # Quirks and mitigation support.
    indirect_victim_opaque: bool = False   # Intel: jmp* victims show no signal
    supports_suppress_bp_on_non_br: bool = False
    supports_auto_ibrs: bool = False
    eibrs: bool = False                    # Intel hardware cross-priv guard
    smt: bool = True

    # Instruction prefetchers (§5.1's IF-channel confound).
    #: BPU-assisted I-prefetch: predicted targets are brought into the
    #: I-cache even when the pipeline does not follow the prediction
    #: (the reason "sometimes not even IF" — parts without it show no
    #: fetch signal at suppressed predictions, parts with it do).
    bpu_prefetch: bool = False
    #: Next-line prefetch: fetching a block pulls the following line.
    next_line_prefetch: bool = False

    #: BTB ways per set (entries beyond this evict LRU).
    btb_ways: int = 8

    # Costs used by the kernel model (cycles).
    syscall_entry_cost: int = 400
    syscall_exit_cost: int = 300

    @property
    def phantom_exec_uops(self) -> int:
        """µops of a phantom target that issue before the frontend
        resteer squashes them (0 = decoder wins the race)."""
        return max(0, self.frontend_resteer_latency - self.issue_latency)

    @property
    def phantom_reaches_execute(self) -> bool:
        return self.phantom_exec_uops > 0


def _amd_btb(name: str, functions) -> BTBIndexing:
    return BTBIndexing(name, tag_functions=tuple(functions))


def _intel_btb(name: str) -> BTBIndexing:
    # Intel parts did not reuse user predictions in kernel mode even
    # with mitigations off (paper §6, "PHANTOM on Intel"), modelled as
    # the privilege mode being part of the BTB tag.
    return BTBIndexing(name, tag_functions=tuple(ZEN3_BTB_FUNCTIONS),
                       privilege_in_tag=True)


ZEN1 = Microarch(
    name="Zen 1", model="AMD Ryzen 5 1600X", vendor="amd", clock_ghz=3.6,
    btb=_amd_btb("zen1", ZEN1_TAG_FUNCTIONS),
    frontend_resteer_latency=8,      # loses the race: 4 µops issue
    supports_suppress_bp_on_non_br=False,   # not supported on Zen(+) (§8.1)
)

ZEN2 = Microarch(
    name="Zen 2", model="AMD EPYC 7252", vendor="amd", clock_ghz=3.1,
    btb=_amd_btb("zen2", ZEN1_TAG_FUNCTIONS),
    frontend_resteer_latency=8,
    supports_suppress_bp_on_non_br=True,
)

ZEN3 = Microarch(
    name="Zen 3", model="AMD Ryzen 5 5600G", vendor="amd", clock_ghz=3.9,
    btb=_amd_btb("zen3", ZEN3_BTB_FUNCTIONS),
    frontend_resteer_latency=3,      # decoder wins: fetch + decode only
    supports_suppress_bp_on_non_br=True,
)

ZEN4 = Microarch(
    name="Zen 4", model="AMD Ryzen 7 7700X", vendor="amd", clock_ghz=4.5,
    btb=_amd_btb("zen4", ZEN3_BTB_FUNCTIONS),
    frontend_resteer_latency=3,
    supports_suppress_bp_on_non_br=True,
    supports_auto_ibrs=True,
)

INTEL_9TH = Microarch(
    name="Intel 9th gen", model="Intel Core i9-9900K", vendor="intel",
    clock_ghz=3.6, btb=_intel_btb("intel9"),
    frontend_resteer_latency=3, indirect_victim_opaque=True, eibrs=True,
    bpu_prefetch=True,   # "sometimes not even IF": these parts still
                         # prefetch suppressed targets (Bunnyhop [77])
)

INTEL_11TH = Microarch(
    name="Intel 11th gen", model="Intel Core i7-11700K", vendor="intel",
    clock_ghz=3.6, btb=_intel_btb("intel11"),
    frontend_resteer_latency=3, indirect_victim_opaque=True, eibrs=True,
    bpu_prefetch=True,
)

INTEL_12TH = Microarch(
    name="Intel 12th gen (P core)", model="Intel Core i7-12700K",
    vendor="intel", clock_ghz=3.6, btb=_intel_btb("intel12"),
    frontend_resteer_latency=3, indirect_victim_opaque=True, eibrs=True,
)

INTEL_13TH = Microarch(
    name="Intel 13th gen (P core)", model="Intel Core i9-13900K",
    vendor="intel", clock_ghz=4.0, btb=_intel_btb("intel13"),
    frontend_resteer_latency=3, indirect_victim_opaque=True, eibrs=True,
)

AMD_MICROARCHES: tuple[Microarch, ...] = (ZEN1, ZEN2, ZEN3, ZEN4)
INTEL_MICROARCHES: tuple[Microarch, ...] = (INTEL_9TH, INTEL_11TH,
                                            INTEL_12TH, INTEL_13TH)
ALL_MICROARCHES: tuple[Microarch, ...] = AMD_MICROARCHES + INTEL_MICROARCHES


def _normalize(name: str) -> str:
    return "".join(ch for ch in name.lower() if ch.isalnum())


def by_name(name: str) -> Microarch:
    """Look up a model by its µarch name.

    Case- and separator-insensitive: "zen2", "Zen 2" and "zen-2" all
    resolve to the same model.
    """
    wanted = _normalize(name)
    for uarch in ALL_MICROARCHES:
        if _normalize(uarch.name) == wanted:
            return uarch
    raise KeyError(name)
