"""Quiescence event scheduler: tick-exact idle-cycle skipping.

When the core is quiescent — nothing in flight, no instruction to
retire — the only things that can happen are *scheduled events*
(deferred timer wakeups, device callbacks the harness plants).  Ticking
one cycle at a time through such a stretch costs a Python iteration per
cycle for work a closed form predicts exactly, so :meth:`CPU.idle`
offers two modes with provably identical observables:

* **ticked** (``PHANTOM_REPRO_FASTPATH=quiesce=0`` or the naive
  engine): advance ``cycles`` by one, count one idle cycle on the
  ``cycles`` PMC, fire every event that has come due — repeat;
* **event-skipped** (fast path default): jump ``cycles`` straight to
  the next event timestamp (or the end of the idle window), applying
  the per-cycle counter effect arithmetically, then fire the event.

The two modes agree because event timestamps are normalised *at
insertion time* (:meth:`EventScheduler.schedule` clamps to the next
cycle boundary — an event can never fire in the past or on the current
cycle, in either mode) and because the only per-cycle effect of a
quiescent core is the idle-cycle counter, which is linear in the jump
width.  ``tests/pipeline/test_quiescence.py`` pins cycle-exact equality
of ``cycles``, every PMC slot and episode/fire timestamps between the
two modes.
"""

from __future__ import annotations

import heapq
from typing import Callable

__all__ = ["EventScheduler"]


class EventScheduler:
    """A min-heap of ``(cycle, seq, callback)`` deadlines.

    ``seq`` makes same-cycle events fire in insertion order and keeps
    heap comparisons away from the (uncomparable) callbacks.  The
    scheduler holds no reference to the CPU; :meth:`CPU.idle` drives it
    and passes the current cycle in.
    """

    def __init__(self) -> None:
        self._heap: list[tuple[int, int, Callable[[int], None]]] = []
        self._seq = 0
        #: Events fired over the scheduler's lifetime (diagnostics).
        self.fired = 0

    def __len__(self) -> int:
        return len(self._heap)

    def schedule(self, now: int, delay: int,
                 callback: Callable[[int], None]) -> int:
        """Arm *callback* to fire *delay* cycles after *now*.

        Returns the cycle the event will fire at.  The deadline is
        clamped to ``now + 1``: a zero/negative delay still fires on the
        *next* cycle, never retroactively — the normalisation that makes
        ticked and event-skipped replay agree no matter when the caller
        armed the event.  Callbacks receive the fire cycle; they run
        while the core is idle, so they must not retire instructions
        (schedule further events, poke counters, flip machine state).
        """
        when = max(int(now) + 1, int(now) + int(delay))
        heapq.heappush(self._heap, (when, self._seq, callback))
        self._seq += 1
        return when

    def next_deadline(self) -> int | None:
        """Cycle of the earliest armed event, or None when empty."""
        return self._heap[0][0] if self._heap else None

    def pop_due(self, now: int) -> Callable[[int], None] | None:
        """Pop the earliest callback due at or before *now*."""
        heap = self._heap
        if heap and heap[0][0] <= now:
            _, _, callback = heapq.heappop(heap)
            self.fired += 1
            return callback
        return None
