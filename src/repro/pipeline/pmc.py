"""Performance monitoring counters.

Counter names follow the events the paper samples where they exist
(op-cache hit/miss on Zen, decoder-sourced dispatch, resteers).  The
attack tooling samples counters exactly like ``perf``: read, run, read,
subtract.

Counters live in a flat list indexed by interned event indices
(:data:`EVENT_INDEX`).  Hot paths resolve an event name to its slot once
(:meth:`PMC.index`) and bump the shared ``counts`` list directly, so a
counter update costs one list-index increment instead of a string hash
plus membership test per event.
"""

from __future__ import annotations

from contextlib import contextmanager

#: Events the CPU emits.
EVENTS = (
    "cycles",
    "instructions",
    "op_cache_hit",                      # op_cache_hit_miss.op_cache_hit
    "op_cache_miss",                     # op_cache_hit_miss.op_cache_miss
    "de_dis_uops_from_decoder",          # µops built by the decoder
    "l1i_access",
    "l1i_miss",
    "l1d_access",
    "l1d_miss",
    "branch_retired",
    "branch_mispredict",
    "resteer_frontend",                  # decoder-detected (Phantom)
    "resteer_backend",                   # execute-detected (Spectre)
    "phantom_fetch",                     # transient fetch performed
    "phantom_decode",                    # transient decode performed
    "phantom_exec_uops",                 # µops transiently executed
    "transient_load",                    # D-cache fills from bad paths
    "syscalls",
)

#: Interned event name -> counter slot.  The CPU resolves indices at
#: construction time and increments ``PMC.counts`` slots directly.
EVENT_INDEX: dict[str, int] = {name: i for i, name in enumerate(EVENTS)}


class PMC:
    """A bank of monotonically increasing counters.

    ``counts`` is the raw slot list; its identity is stable across
    :meth:`reset` so pre-bound references held by the CPU fast path
    never go stale.
    """

    __slots__ = ("counts",)

    def __init__(self) -> None:
        self.counts: list[int] = [0] * len(EVENTS)

    @staticmethod
    def index(event: str) -> int:
        """Resolve *event* to its counter slot (KeyError if unknown)."""
        try:
            return EVENT_INDEX[event]
        except KeyError:
            raise KeyError(f"unknown PMC event {event!r}") from None

    def add(self, event: str, n: int = 1) -> None:
        try:
            self.counts[EVENT_INDEX[event]] += n
        except KeyError:
            raise KeyError(f"unknown PMC event {event!r}") from None

    def read(self, event: str) -> int:
        try:
            return self.counts[EVENT_INDEX[event]]
        except KeyError:
            raise KeyError(f"unknown PMC event {event!r}") from None

    def snapshot(self) -> dict[str, int]:
        return dict(zip(EVENTS, self.counts))

    def reset(self) -> None:
        counts = self.counts
        for i in range(len(counts)):
            counts[i] = 0

    @contextmanager
    def sample(self, *events: str):
        """perf-style sampling: ``with pmc.sample("op_cache_miss") as s: ...``
        then ``s["op_cache_miss"]`` holds the delta."""
        before = {event: self.read(event) for event in events}
        deltas: dict[str, int] = {}
        yield deltas
        for event in events:
            deltas[event] = self.read(event) - before[event]
