"""Performance monitoring counters.

Counter names follow the events the paper samples where they exist
(op-cache hit/miss on Zen, decoder-sourced dispatch, resteers).  The
attack tooling samples counters exactly like ``perf``: read, run, read,
subtract.
"""

from __future__ import annotations

from collections import Counter
from contextlib import contextmanager

#: Events the CPU emits.
EVENTS = (
    "cycles",
    "instructions",
    "op_cache_hit",                      # op_cache_hit_miss.op_cache_hit
    "op_cache_miss",                     # op_cache_hit_miss.op_cache_miss
    "de_dis_uops_from_decoder",          # µops built by the decoder
    "l1i_access",
    "l1i_miss",
    "l1d_access",
    "l1d_miss",
    "branch_retired",
    "branch_mispredict",
    "resteer_frontend",                  # decoder-detected (Phantom)
    "resteer_backend",                   # execute-detected (Spectre)
    "phantom_fetch",                     # transient fetch performed
    "phantom_decode",                    # transient decode performed
    "phantom_exec_uops",                 # µops transiently executed
    "transient_load",                    # D-cache fills from bad paths
    "syscalls",
)

#: Hot-path membership test: ``add``/``read`` run on every simulated
#: memory access, so the check must be O(1), not a tuple scan.
_EVENT_SET = frozenset(EVENTS)


class PMC:
    """A bank of monotonically increasing counters."""

    def __init__(self) -> None:
        self._counts: Counter[str] = Counter()

    def add(self, event: str, n: int = 1) -> None:
        if event not in _EVENT_SET:
            raise KeyError(f"unknown PMC event {event!r}")
        self._counts[event] += n

    def read(self, event: str) -> int:
        if event not in _EVENT_SET:
            raise KeyError(f"unknown PMC event {event!r}")
        return self._counts[event]

    def snapshot(self) -> dict[str, int]:
        return {event: self._counts[event] for event in EVENTS}

    def reset(self) -> None:
        self._counts.clear()

    @contextmanager
    def sample(self, *events: str):
        """perf-style sampling: ``with pmc.sample("op_cache_miss") as s: ...``
        then ``s["op_cache_miss"]`` holds the delta."""
        before = {event: self.read(event) for event in events}
        deltas: dict[str, int] = {}
        yield deltas
        for event in events:
            deltas[event] = self.read(event) - before[event]
