"""The simulated CPU: decoupled frontend semantics with transient episodes.

Execution model
===============

Architectural execution is functional (instruction at a time) with cycle
accounting; microarchitectural speculation is modelled as *episodes*
expanded inline at the moment the real frontend would have performed
them.  Per instruction the CPU:

1. consults the µop cache (hit bypasses fetch+decode, as on hardware);
2. on a µop-cache miss, fetches the instruction bytes through the
   MMU/L1I and decodes them;
3. queries the BPU for a predicted branch source anywhere inside the
   instruction's byte span — the pre-decode prediction of Figure 2.
   Disagreement between the prediction's recorded semantics and the
   decoded reality triggers a **phantom episode** (decoder-detected,
   frontend resteer): transient fetch of the predicted target, transient
   decode into the µop cache, and — if the µarch loses the latency race
   (Zen 1/2) — transient execution of a few µops;
4. executes the instruction architecturally;
5. resolves execute-dependent predictions: wrong indirect/return targets
   and wrong conditional directions trigger **backend episodes**
   (classic Spectre windows) that transiently execute the wrong path,
   with nested phantom episodes allowed inside the window (paper §7.4);
6. trains the BPU with the architectural outcome.

Cache fills performed by episodes are never rolled back — they are the
observation channels and the attack surface.

Execution engines
=================

Two engines implement the model above with identical architectural
results (cycles, PMCs, episodes — pinned by the differential tests):

* the **naive path** (``_step_slow``) interprets every step from
  scratch: µop-cache probe, decode-cache lookup, ``execute()``'s
  mnemonic dispatch;
* the **fast path** compiles, on the second visit to a ``(pc,
  privilege)`` pair, the whole step into one fused closure holding the
  decoded instruction, a specialised executor thunk
  (:func:`~repro.isa.semantics.compile_executor`) and pre-resolved PMC
  counter slots.  Stateful shared models (µop cache, BPU, cache
  hierarchy) are still consulted per step — only Python-level dispatch,
  allocation and attribute traffic is removed, which is what keeps the
  fast path architecturally invisible.

``PHANTOM_REPRO_FASTPATH=0`` selects the naive path (see
``docs/performance.md``).  Step thunks are dropped by
:meth:`CPU.invalidate_code`; privilege is part of the cache key, so
kernel and user executions of the same bytes never share a thunk.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass
from typing import Callable

from ..errors import (DecodeError, HaltRequested, PageFault, ReproError,
                      SimulationLimit, TruncatedError)
from ..frontend import BPU, Prediction, UopCache
from ..isa import (ArchState, BranchKind, Instruction, Mnemonic,
                   compile_executor, decode, execute, uop_count)
from ..memory import MemorySystem
from ..params import MASK64, PAGE_SHIFT, PAGE_SIZE, canonical
from ..telemetry import metrics as _metrics
from ..telemetry.spans import SPANS as _SPANS
from ..telemetry.trace import TRACE as _TRACE
from .config import Microarch
from .pmc import PMC

_REG = _metrics.REGISTRY

_MAX_INSTR_BYTES = 16

#: Pre-resolved PMC counter slots (see :meth:`PMC.index`): the hot path
#: bumps ``pmc.counts`` entries directly instead of hashing event names.
_IDX_INSTRUCTIONS = PMC.index("instructions")
_IDX_OP_HIT = PMC.index("op_cache_hit")
_IDX_OP_MISS = PMC.index("op_cache_miss")
_IDX_DE_DIS = PMC.index("de_dis_uops_from_decoder")
_IDX_L1I_ACCESS = PMC.index("l1i_access")
_IDX_L1I_MISS = PMC.index("l1i_miss")
_IDX_L1D_ACCESS = PMC.index("l1d_access")
_IDX_L1D_MISS = PMC.index("l1d_miss")
_IDX_BRANCH_RETIRED = PMC.index("branch_retired")
_IDX_BRANCH_MISPREDICT = PMC.index("branch_mispredict")
_IDX_RESTEER_FRONTEND = PMC.index("resteer_frontend")
_IDX_RESTEER_BACKEND = PMC.index("resteer_backend")
_IDX_PHANTOM_FETCH = PMC.index("phantom_fetch")
_IDX_PHANTOM_DECODE = PMC.index("phantom_decode")
_IDX_PHANTOM_EXEC_UOPS = PMC.index("phantom_exec_uops")
_IDX_TRANSIENT_LOAD = PMC.index("transient_load")

#: Branch kinds for which a missing prediction means straight-line
#: speculation (the only kinds :meth:`CPU._sequential_speculation` acts
#: on) — lets compiled step thunks skip the call entirely otherwise.
_SLS_KINDS = frozenset((BranchKind.DIRECT, BranchKind.CALL_DIRECT,
                        BranchKind.INDIRECT, BranchKind.CALL_INDIRECT,
                        BranchKind.RETURN))

#: Mnemonics whose execution raises a trap (ends transient windows too).
_TRAP_MNEMONICS = frozenset((Mnemonic.SYSCALL, Mnemonic.SYSRET,
                             Mnemonic.HLT, Mnemonic.UD2))

#: Step/transient-cache miss sentinel (``None`` is a valid cached value
#: in the transient cache: "bytes at this pc do not decode").
_UNCOMPILED = object()


class Reach(enum.IntEnum):
    """How far a transient episode advanced in the pipeline."""

    NONE = 0
    FETCH = 1
    DECODE = 2
    EXECUTE = 3


@dataclass
class EpisodeRecord:
    """Diagnostic record of one speculation episode (tests only —
    exploits must use the observation channels instead)."""

    source_pc: int
    predicted_kind: BranchKind | None
    actual_kind: BranchKind
    target: int
    reach: Reach
    frontend_resteer: bool
    cross_privilege: bool = False
    nested: bool = False
    cycle: int = 0


@dataclass
class MSRState:
    """Model-specific-register bits controlling the mitigations."""

    suppress_bp_on_non_br: bool = False
    auto_ibrs: bool = False


class _TransientState:
    """Register/store state of an in-flight transient path.

    The load/store callbacks the executor needs are pre-bound here once
    per window — they used to be re-allocated as lambdas on every µop
    iteration of ``_transient_run``.  ``stores`` keeps *program order*:
    a store to an address that already has a buffered entry re-inserts
    it, so youngest-first scans (store-to-load forwarding) see the
    latest write last-inserted.
    """

    __slots__ = ("arch", "stores", "load", "store")

    def __init__(self, cpu: "CPU", arch: ArchState) -> None:
        self.arch = arch
        self.stores: dict[int, tuple[int, int]] = {}
        user = not cpu.kernel_mode

        def load(addr: int, size: int) -> int:
            return cpu._transient_load(addr, size, self, user)

        def store(addr: int, size: int, value: int) -> None:
            stores = self.stores
            if addr in stores:
                del stores[addr]
            stores[addr] = (size, value)

        self.load = load
        self.store = store


class CPU:
    """One simulated core."""

    def __init__(self, uarch: Microarch, mem: MemorySystem,
                 rng: random.Random | None = None,
                 fastpath: bool | None = None) -> None:
        self.uarch = uarch
        self.mem = mem
        self.rng = rng or random.Random(0)
        self.bpu = BPU(uarch.btb, btb_ways=uarch.btb_ways)
        self.uopcache = UopCache()
        self.pmc = PMC()
        self.state = ArchState()
        self.msr = MSRState()
        self.pc = 0
        self.cycles = 0
        self.kernel_mode = False
        self.episodes: list[EpisodeRecord] = []
        self.record_episodes = False
        #: Set by the Machine: handle syscall/sysret/hlt/ud2 traps.
        self.trap_handler = None
        #: Optional per-instruction observer: fn(pc, instr) called after
        #: decode, before execution (used by the analysis tracer).
        self.instr_hook = None
        self._decode_cache: dict[int, Instruction] = {}
        #: Engine selection; defaults to the memory system's, so one
        #: PHANTOM_REPRO_FASTPATH read governs the whole machine.
        self._fastpath = mem.fastpath if fastpath is None else bool(fastpath)
        #: Memoized (or naive — same results) translation entry point.
        self._translate = mem.translate
        #: L1-miss heuristic threshold, read once: an access is a miss
        #: when its service latency reached L2.
        self._l1_miss_threshold = mem.hier.params.l2_latency
        self._counts = self.pmc.counts
        #: Fused step thunks, keyed by pc, split per privilege level
        #: (the (pc, kernel_mode) step-cache key).
        self._step_cache_user: dict[int, Callable[[], None]] = {}
        self._step_cache_kernel: dict[int, Callable[[], None]] = {}
        #: Transient-path decode cache: pc -> (instr, thunk, µops,
        #: ends_window) or None for undecodable bytes.  Valid only for
        #: the page-table generation it was filled under.
        self._transient_cache: dict[int, tuple | None] = {}
        self._transient_gen = mem.aspace.generation
        #: Page -> pcs with any cached artifact on that page, so
        #: invalidate_code touches only the affected pages.
        self._code_pages: dict[int, set[int]] = {}
        self._m_phantom = _metrics.counter("speculation_episodes",
                                           flavour="phantom")
        self._m_spectre = _metrics.counter("speculation_episodes",
                                           flavour="spectre")

    # ------------------------------------------------------------------
    # decode path
    # ------------------------------------------------------------------

    def invalidate_code(self, lo: int, hi: int) -> None:
        """Drop cached artifacts overlapping [lo, hi) (self-modifying code).

        Removes decoded instructions, compiled step thunks and transient
        decode entries whose bytes may intersect the written range, and
        invalidates the µop-cache windows covering it — µops cracked
        from the old bytes must not serve hits after a code rewrite.
        Cached pcs are indexed by page, so the walk touches only the
        pages the write spans instead of scanning every cached decode.
        """
        if hi <= lo:
            return
        decode_cache = self._decode_cache
        step_user = self._step_cache_user
        step_kernel = self._step_cache_kernel
        transient = self._transient_cache
        code_pages = self._code_pages
        lo_reach = lo - _MAX_INSTR_BYTES
        for page in range((lo_reach + 1) >> PAGE_SHIFT,
                          ((hi - 1) >> PAGE_SHIFT) + 1):
            pcs = code_pages.get(page)
            if not pcs:
                continue
            stale = [pc for pc in pcs if lo_reach < pc < hi]
            for pc in stale:
                pcs.discard(pc)
                decode_cache.pop(pc, None)
                step_user.pop(pc, None)
                step_kernel.pop(pc, None)
                transient.pop(pc, None)
            if not pcs:
                del code_pages[page]
        line = (lo_reach + 1) & ~63
        while line < hi:
            self.uopcache.invalidate_window(line)
            line += 64

    def _register_code_pc(self, pc: int) -> None:
        """Index *pc* for page-granular invalidation."""
        page = pc >> PAGE_SHIFT
        pcs = self._code_pages.get(page)
        if pcs is None:
            pcs = self._code_pages[page] = set()
        pcs.add(pc)

    def _count_l1(self, cyc: int, access_idx: int, miss_idx: int) -> None:
        """Count one L1 access, classifying it as a miss when its
        service latency reached L2 — the shared heuristic of the I- and
        D-side paths (pinned by tests/pipeline/test_step_cache.py)."""
        counts = self._counts
        counts[access_idx] += 1
        if cyc >= self._l1_miss_threshold:
            counts[miss_idx] += 1

    def _fetch_bytes(self, pc: int, length: int) -> bytes:
        """Fetch *length* raw bytes at *pc* through the MMU and L1I."""
        raw, cyc = self.mem.fetch_code(pc, length,
                                       user_mode=not self.kernel_mode)
        self.cycles += cyc
        self._count_l1(cyc, _IDX_L1I_ACCESS, _IDX_L1I_MISS)
        return raw

    def _decode_at(self, pc: int) -> Instruction:
        """Decode the instruction at *pc*, fetching block by block.

        Fetch granularity is the µarch's aligned fetch block: the block
        after the instruction is only touched when the instruction
        actually crosses the boundary — matching hardware and keeping
        the fall-through line cold for Phantom's observation channels.
        """
        instr = self._decode_cache.get(pc)
        if instr is not None:
            return instr
        block = self.uarch.fetch_block
        block_end = (pc & ~(block - 1)) + block
        raw = self._fetch_bytes(pc, min(block_end - pc, _MAX_INSTR_BYTES))
        try:
            instr = decode(raw)
        except TruncatedError:
            try:
                raw += self._fetch_bytes(pc + len(raw),
                                         _MAX_INSTR_BYTES - len(raw))
            except PageFault as exc:
                raise PageFault(canonical(pc + len(raw)), present=False,
                                user=not self.kernel_mode, exec_=True) \
                    from exc
            instr = decode(raw)   # DecodeError propagates
        self._decode_cache[pc] = instr
        self._register_code_pc(pc)
        self.cycles += self.uarch.decode_latency
        if self.uarch.next_line_prefetch:
            self._prefetch_target((pc & ~63) + 64, count_event=False)
        return instr

    # ------------------------------------------------------------------
    # memory callbacks for the executor
    # ------------------------------------------------------------------

    def _load(self, addr: int, size: int) -> int:
        value, cyc = self.mem.read_data(addr, size,
                                        user_mode=not self.kernel_mode)
        self.cycles += cyc
        self._count_l1(cyc, _IDX_L1D_ACCESS, _IDX_L1D_MISS)
        return value

    def _store(self, addr: int, size: int, value: int) -> None:
        cyc = self.mem.write_data(addr, size, value,
                                  user_mode=not self.kernel_mode)
        self.cycles += cyc
        self._counts[_IDX_L1D_ACCESS] += 1

    def _rdtsc(self) -> int:
        return self.cycles

    # ------------------------------------------------------------------
    # architectural stepping
    # ------------------------------------------------------------------

    def run(self, pc: int | None = None, *,
            max_instructions: int = 2_000_000) -> None:
        """Run until ``hlt`` (raises HaltRequested) or the budget expires."""
        if pc is not None:
            self.pc = canonical(pc)
        if self._fastpath:
            user_cache = self._step_cache_user
            kernel_cache = self._step_cache_kernel
            for _ in range(max_instructions):
                cache = kernel_cache if self.kernel_mode else user_cache
                thunk = cache.get(self.pc)
                if thunk is not None:
                    thunk()
                else:
                    self._step_and_compile(cache)
        else:
            for _ in range(max_instructions):
                self._step_slow()
        raise SimulationLimit(
            f"exceeded {max_instructions} instructions at pc={self.pc:#x}")

    def step(self) -> None:
        """Execute one architectural instruction (plus its episodes)."""
        if self._fastpath:
            cache = self._step_cache_kernel if self.kernel_mode \
                else self._step_cache_user
            thunk = cache.get(self.pc)
            if thunk is not None:
                thunk()
            else:
                self._step_and_compile(cache)
        else:
            self._step_slow()

    def _step_slow(self) -> None:
        """The naive engine: interpret one step from scratch."""
        pc = self.pc
        uop_hit = self.uopcache.access(pc)
        if uop_hit:
            self._counts[_IDX_OP_HIT] += 1
            self.cycles += 1
        else:
            self._counts[_IDX_OP_MISS] += 1
            if self.msr.suppress_bp_on_non_br \
                    and self.uarch.supports_suppress_bp_on_non_br:
                # SuppressBPOnNonBr withholds next-fetch predictions
                # until bytes are known to be a branch, costing a little
                # frontend lookahead on the decode path (measured at
                # well under 1% by the paper's UnixBench runs, §6.3).
                self.cycles += 2
        instr = self._decode_at(pc)
        if not uop_hit:
            self._counts[_IDX_DE_DIS] += uop_count(instr)
        if self.instr_hook is not None:
            self.instr_hook(pc, instr)
        if _TRACE.enabled:
            _TRACE.emit("retire", self.cycles, pc=pc, text=str(instr),
                        kernel_mode=self.kernel_mode)

        prediction = self.bpu.predict_in_block(
            pc, instr.length, kernel_mode=self.kernel_mode)

        # Phantom: decoder-detectable disagreement between the
        # prediction's semantics and the decoded instruction.
        prediction = self._frontend_check(pc, instr, prediction)

        result = execute(instr, pc, self.state, self._load, self._store,
                         rdtsc=self._rdtsc)
        self._counts[_IDX_INSTRUCTIONS] += 1
        self.cycles += 1

        self._resolve_and_train(pc, instr, result, prediction)

        if result.trap is not None:
            self._handle_trap(result.trap, instr, result)
            return
        self.pc = canonical(result.next_pc)

    def _step_and_compile(self, cache: dict[int, Callable[[], None]]) -> None:
        """Cold visit: run the naive engine once, then install the fused
        step thunk for subsequent visits.

        The naive step performs the first-visit work (fetch/decode cycle
        charging, fault propagation with the exact naive ordering), so
        compilation itself is architecturally free; the thunk compiled
        afterwards replays the steady-state step, whose decode-cache hit
        can no longer fetch or fault.

        With span tracing active each cold visit is bracketed by a
        ``fastpath:compile`` span (warm visits run bare thunks — the
        compile/execute split a trace shows is exactly the dual-engine
        split).  Compilation is deliberately *not* a metrics counter:
        only the fast engine compiles, and engine manifests must stay
        fingerprint-identical.
        """
        if _SPANS.enabled:
            with _SPANS.span("fastpath:compile", pc=hex(self.pc)):
                self._cold_step(cache)
        else:
            self._cold_step(cache)

    def _cold_step(self, cache: dict[int, Callable[[], None]]) -> None:
        pc = self.pc
        kernel_mode = self.kernel_mode
        self._step_slow()
        instr = self._decode_cache.get(pc)
        if instr is None:
            return   # invalidated during its own step; stay cold
        cache[pc] = self._compile_step(pc, instr, kernel_mode)
        self._register_code_pc(pc)

    def _compile_step(self, pc: int, instr: Instruction,
                      kernel_mode: bool) -> Callable[[], None]:
        """Fuse one steady-state step of *instr* at *pc* into a closure.

        Everything derivable from the decoded instruction is resolved
        here: the executor thunk, µop count, branch kind, trap
        potential, trace text.  The closure still consults every
        stateful shared model (µop cache, BPU, PMC, cache hierarchy) —
        its results must be byte-identical to ``_step_slow``.
        """
        cpu = self
        counts = self._counts
        uop_access = self.uopcache.access
        predict = self.bpu.predict_in_block
        frontend_check = self._frontend_check
        resolve = self._resolve_and_train
        msr = self.msr
        state = self.state
        load = self._load
        store = self._store
        rdtsc = self._rdtsc
        suppress_supported = self.uarch.supports_suppress_bp_on_non_br
        exec_thunk = compile_executor(instr, pc)
        n_uops = uop_count(instr)
        length = instr.length
        kind = instr.branch_kind
        is_branch = kind is not BranchKind.NONE
        sls_candidate = kind in _SLS_KINDS
        can_trap = instr.mnemonic in _TRAP_MNEMONICS
        text = str(instr)

        def step_thunk() -> None:
            if uop_access(pc):
                counts[_IDX_OP_HIT] += 1
                cpu.cycles += 1
            else:
                counts[_IDX_OP_MISS] += 1
                if msr.suppress_bp_on_non_br and suppress_supported:
                    cpu.cycles += 2
                counts[_IDX_DE_DIS] += n_uops
            hook = cpu.instr_hook
            if hook is not None:
                hook(pc, instr)
            if _TRACE.enabled:
                _TRACE.emit("retire", cpu.cycles, pc=pc, text=text,
                            kernel_mode=kernel_mode)
            prediction = predict(pc, length, kernel_mode=kernel_mode)
            if prediction is not None:
                prediction = frontend_check(pc, instr, prediction)
            elif sls_candidate:
                cpu._sequential_speculation(pc, instr)
            result = exec_thunk(state, load, store, rdtsc)
            counts[_IDX_INSTRUCTIONS] += 1
            cpu.cycles += 1
            if is_branch:
                resolve(pc, instr, result, prediction)
            if can_trap and result.trap is not None:
                cpu._handle_trap(result.trap, instr, result)
                return
            cpu.pc = canonical(result.next_pc)

        return step_thunk

    # ------------------------------------------------------------------
    # frontend (pre-decode) prediction handling
    # ------------------------------------------------------------------

    def _frontend_check(self, pc: int, instr: Instruction,
                        prediction: Prediction | None) -> Prediction | None:
        """Handle decoder-detectable mispredictions.

        Returns the prediction if it survives decode (execute-dependent
        semantics agree) so the backend can verify it; returns None when
        the decoder already resteered (phantom episode performed).
        """
        if prediction is None:
            self._sequential_speculation(pc, instr)
            return None
        actual_kind = instr.branch_kind if prediction.source_pc == pc \
            else BranchKind.NONE
        predicted_kind = prediction.kind

        if predicted_kind is actual_kind:
            if actual_kind in (BranchKind.DIRECT, BranchKind.CALL_DIRECT,
                               BranchKind.CONDITIONAL):
                # PC-relative displacements are decodable: the decoder
                # verifies the target immediately (the asymmetric
                # different-displacement cases of Table 1).  For jcc the
                # *direction* still resolves at execute.
                if prediction.target != instr.target(pc):
                    self._phantom(pc, prediction, actual_kind)
                    return None
            if (self.msr.auto_ibrs and self.uarch.supports_auto_ibrs
                    and prediction.cross_privilege
                    and actual_kind.is_execute_dependent):
                # AutoIBRS refuses cross-privilege predictions, but only
                # after the predicted target was fetched and decoded
                # (§8.1): model as a phantom-style frontend episode with
                # no execute window.
                self._phantom(pc, prediction, actual_kind)
                return None
            return prediction  # backend will verify target/direction
        # Branch-type confusion: detected at decode, not at execute.
        self._phantom(pc, prediction, actual_kind)
        return None

    def _sequential_speculation(self, pc: int, instr: Instruction) -> None:
        """No prediction: fetch ran sequentially past this instruction.

        For architecturally taken unconditional branches this is
        straight-line speculation of the fall-through bytes, resteered
        by decode (jmp/call) or dispatch (jmp*/ret).  Conditional
        mispredictions are handled by the backend path instead.
        """
        kind = instr.branch_kind
        if kind in _SLS_KINDS:
            if (self.uarch.indirect_victim_opaque
                    and kind in (BranchKind.INDIRECT,
                                 BranchKind.CALL_INDIRECT)):
                # Intel quirk (§6): jmp* victims show no phantom/SLS
                # pipeline signal; prefetching parts still warm the
                # fall-through line.
                if self.uarch.bpu_prefetch:
                    self._prefetch_target((pc + instr.length) & MASK64)
                return
            fall_through = (pc + instr.length) & MASK64
            exec_uops = self.uarch.phantom_exec_uops
            if self.msr.suppress_bp_on_non_br \
                    and self.uarch.supports_suppress_bp_on_non_br:
                # SLS follows from the *absence* of a branch prediction,
                # which is exactly what this bit suppresses speculation
                # on; transient execute stops, fetch/decode do not (O4).
                exec_uops = 0
            reach = self._transient_target(fall_through, exec_uops,
                                           state=None)
            self._counts[_IDX_RESTEER_FRONTEND] += 1
            self.cycles += self.uarch.frontend_resteer_latency
            self._record(pc, None, kind, fall_through, reach,
                         frontend=True)

    def _phantom(self, pc: int, prediction: Prediction,
                 actual_kind: BranchKind) -> None:
        """Decoder-detected misprediction: the Phantom episode."""
        exec_uops = self.uarch.phantom_exec_uops
        if (self.msr.suppress_bp_on_non_br
                and self.uarch.supports_suppress_bp_on_non_br
                and actual_kind is BranchKind.NONE):
            exec_uops = 0    # O4: IF and ID still happen
        if (self.msr.auto_ibrs and self.uarch.supports_auto_ibrs
                and prediction.cross_privilege):
            exec_uops = 0    # O5: IF (and ID) still happen
        if (self.uarch.indirect_victim_opaque
                and actual_kind in (BranchKind.INDIRECT,
                                    BranchKind.CALL_INDIRECT)):
            # Intel quirk: jmp* victims show no phantom *pipeline*
            # signal (§6) — but parts with BPU-assisted prefetch still
            # pull the predicted target into the I-cache ("sometimes
            # not even IF" distinguishes the parts without it).
            reach = Reach.NONE
            if self.uarch.bpu_prefetch:
                reach = self._prefetch_target(prediction.target)
            self._counts[_IDX_RESTEER_FRONTEND] += 1
            self._record(pc, prediction.kind, actual_kind,
                         prediction.target, reach, frontend=True,
                         cross_privilege=prediction.cross_privilege)
            return
        reach = self._transient_target(prediction.target, exec_uops,
                                       state=None)
        self._counts[_IDX_RESTEER_FRONTEND] += 1
        self._counts[_IDX_BRANCH_MISPREDICT] += 1
        self.cycles += self.uarch.frontend_resteer_latency
        self._record(pc, prediction.kind, actual_kind, prediction.target,
                     reach, frontend=True,
                     cross_privilege=prediction.cross_privilege)

    # ------------------------------------------------------------------
    # backend resolution and training
    # ------------------------------------------------------------------

    def _resolve_and_train(self, pc: int, instr: Instruction, result,
                           prediction: Prediction | None) -> None:
        kind = instr.branch_kind
        if kind is BranchKind.NONE:
            return
        self._counts[_IDX_BRANCH_RETIRED] += 1

        if kind.is_call:
            self.bpu.call_executed((pc + instr.length) & MASK64)
        rsb_prediction = None
        if kind is BranchKind.RETURN:
            rsb_prediction = self.bpu.ret_executed()

        # Backend verification of execute-dependent predictions.
        if prediction is not None and kind.is_execute_dependent:
            predicted_target = prediction.target
            if kind is BranchKind.CONDITIONAL:
                if result.taken:
                    pass  # predicted taken w/ correct target: correct
                else:
                    # Predicted taken, actually not taken: the taken
                    # path ran transiently (Spectre-v1 windows).
                    self._backend_mispredict(pc, prediction.kind,
                                             kind, predicted_target)
            elif predicted_target != result.target:
                self._backend_mispredict(pc, prediction.kind, kind,
                                         predicted_target)
        elif prediction is None and kind is BranchKind.CONDITIONAL \
                and result.taken:
            # Predicted not-taken (default), actually taken: the
            # fall-through path ran transiently.
            self._backend_mispredict(pc, None, kind,
                                     (pc + instr.length) & MASK64)
        elif prediction is None and kind is BranchKind.RETURN \
                and rsb_prediction is not None \
                and rsb_prediction != result.target:
            self._backend_mispredict(pc, BranchKind.RETURN, kind,
                                     rsb_prediction)

        self.bpu.train_branch(pc, kind, result.target, bool(result.taken),
                              kernel_mode=self.kernel_mode)

    def _backend_mispredict(self, pc: int, predicted_kind,
                            actual_kind: BranchKind,
                            wrong_target: int) -> None:
        """Execute-detected misprediction: the classic Spectre window."""
        self._counts[_IDX_RESTEER_BACKEND] += 1
        self._counts[_IDX_BRANCH_MISPREDICT] += 1
        transient = _TransientState(self, self.state.copy())
        executed = self._transient_run(wrong_target,
                                       self.uarch.backend_window_uops,
                                       transient, allow_nested=True)
        self.cycles += 18 + executed  # resteer + pipeline refill
        self._record(pc, predicted_kind, actual_kind, wrong_target,
                     Reach.EXECUTE, frontend=False)

    # ------------------------------------------------------------------
    # transient machinery
    # ------------------------------------------------------------------

    def _prefetch_target(self, target: int, *,
                         count_event: bool = True) -> Reach:
        """I-prefetch of an address: the line is cached but nothing
        enters the pipeline (no decode, no µops)."""
        try:
            pa = self._translate(canonical(target), exec_=True,
                                 user_mode=not self.kernel_mode)
        except PageFault:
            return Reach.NONE
        self.mem.hier.prefetch_instr(pa & ~63)
        if count_event:
            self._counts[_IDX_PHANTOM_FETCH] += 1
        return Reach.FETCH

    def _transient_target(self, target: int, exec_uops: int,
                          state: _TransientState | None,
                          nested: bool = False) -> Reach:
        """Fetch/decode/execute a speculative target; returns the reach.

        This is the phantom pipeline walk: instruction fetch through the
        MMU (exec permission enforced, faults squashed), decode into the
        µop cache, then at most *exec_uops* µops of transient execution.
        """
        target = canonical(target)
        user = not self.kernel_mode
        # --- IF ---------------------------------------------------------
        block = target & ~(self.uarch.fetch_block - 1)
        try:
            pa = self._translate(target, exec_=True, user_mode=user)
        except PageFault:
            return Reach.NONE
        line = pa & ~63
        self.mem.hier.prefetch_instr(line)
        end_pa = pa + (block + self.uarch.fetch_block - target)
        if (end_pa - 1) & ~63 != line:
            self.mem.hier.prefetch_instr((end_pa - 1) & ~63)
        self._counts[_IDX_PHANTOM_FETCH] += 1
        reach = Reach.FETCH
        # --- ID ---------------------------------------------------------
        raw = self.mem.phys.read(pa, min(self.uarch.fetch_block,
                                         PAGE_SIZE - (pa & (PAGE_SIZE - 1))))
        decoded: list[tuple[int, Instruction]] = []
        pos = 0
        while pos < len(raw):
            try:
                instr = decode(raw, pos)
            except DecodeError:
                break
            decoded.append((target + pos, instr))
            pos += instr.length
        if decoded:
            self.uopcache.fill(target)
            last_pc = decoded[-1][0]
            if (last_pc >> 6) != (target >> 6):
                self.uopcache.fill(last_pc)
            self._counts[_IDX_PHANTOM_DECODE] += 1
            reach = Reach.DECODE
        # --- EX ---------------------------------------------------------
        if exec_uops > 0 and decoded:
            transient = state or _TransientState(self, self.state.copy())
            executed = self._transient_run(target, exec_uops, transient,
                                           allow_nested=False)
            if executed > 0:
                self._counts[_IDX_PHANTOM_EXEC_UOPS] += executed
                reach = Reach.EXECUTE
        if nested:
            self._counts[_IDX_RESTEER_FRONTEND] += 1
        return reach

    def _transient_entry(self, pc: int, pa: int) -> tuple | None:
        """Decode (and memoize) the transient instruction at *pc*.

        Caches ``(instr, executor thunk, µop count, ends_window)``, or
        ``None`` when the bytes do not decode — the lookup must
        reproduce the naive path's break-on-DecodeError without
        re-reading physical memory every µop.  Entries are dropped by
        ``invalidate_code`` and whenever the page-table generation
        moves (a remap changes which bytes live at *pc*).
        """
        window = min(_MAX_INSTR_BYTES, PAGE_SIZE - (pa & (PAGE_SIZE - 1)))
        raw = self.mem.phys.read(pa, window)
        try:
            instr = decode(raw)
        except DecodeError:
            entry = None
        else:
            ends_window = instr.is_fence or instr.mnemonic in _TRAP_MNEMONICS
            entry = (instr, compile_executor(instr, pc), uop_count(instr),
                     ends_window, instr.length, instr.branch_kind)
        self._transient_cache[pc] = entry
        self._register_code_pc(pc)
        return entry

    def _transient_run(self, pc: int, uop_budget: int,
                       transient: _TransientState,
                       allow_nested: bool) -> int:
        """Transiently execute from *pc* until the µop budget runs out.

        Loads pull real data through the D-cache (filling it — the
        leak); stores stay in a private store buffer; faults, fences,
        traps and undecodable bytes end the window.  Returns µops
        executed.
        """
        user = not self.kernel_mode
        executed = 0
        pc = canonical(pc)
        translate = self._translate
        t_load = transient.load
        t_store = transient.store
        rdtsc = self._rdtsc
        arch = transient.arch
        fast = self._fastpath
        if fast:
            generation = self.mem.aspace.generation
            if self._transient_gen != generation:
                self._transient_cache.clear()
                self._transient_gen = generation
            cache = self._transient_cache
        while uop_budget > 0:
            try:
                pa = translate(pc, exec_=True, user_mode=user)
            except PageFault:
                break
            if fast:
                entry = cache.get(pc, _UNCOMPILED)
                if entry is _UNCOMPILED:
                    entry = self._transient_entry(pc, pa)
                if entry is None:
                    break
                instr, exec_thunk, n, ends_window, length, kind = entry
                self.mem.hier.prefetch_instr(pa & ~63)
                self.uopcache.fill(pc)
                if ends_window:
                    break
                if n > uop_budget:
                    break
            else:
                window = min(_MAX_INSTR_BYTES,
                             PAGE_SIZE - (pa & (PAGE_SIZE - 1)))
                raw = self.mem.phys.read(pa, window)
                try:
                    instr = decode(raw)
                except DecodeError:
                    break
                self.mem.hier.prefetch_instr(pa & ~63)
                self.uopcache.fill(pc)
                if instr.is_fence or instr.mnemonic in _TRAP_MNEMONICS:
                    break
                n = uop_count(instr)
                if n > uop_budget:
                    break
                length = instr.length
                kind = instr.branch_kind

            if allow_nested:
                nested_pred = self.bpu.predict_in_block(
                    pc, length, kernel_mode=self.kernel_mode)
                if nested_pred is not None and \
                        nested_pred.kind is not kind:
                    # Phantom nested inside a Spectre window (§7.4):
                    # the decoder will resteer, but the phantom target
                    # advances with the *transient* register state.
                    reach = self._transient_target(
                        nested_pred.target, self.uarch.phantom_exec_uops,
                        transient, nested=True)
                    self._record(pc, nested_pred.kind, kind,
                                 nested_pred.target, reach, frontend=True,
                                 cross_privilege=nested_pred.cross_privilege,
                                 nested=True)

            try:
                if fast:
                    result = exec_thunk(arch, t_load, t_store, rdtsc)
                else:
                    result = execute(instr, pc, arch, t_load, t_store,
                                     rdtsc=rdtsc)
            except PageFault:
                break
            executed += n
            uop_budget -= n
            if result.trap is not None:
                break
            pc = canonical(result.next_pc)
        return executed

    def _transient_load(self, addr: int, size: int,
                        transient: _TransientState, user: bool) -> int:
        stores = transient.stores
        if stores:
            # Store-to-load forwarding: the youngest buffered store that
            # fully contains the load forwards its bytes (hardware
            # forwards from the store buffer; the old exact-(addr, size)
            # match let contained reloads read stale memory).  Loads
            # only *partially* overlapping a store read memory —
            # documented in tests/pipeline/test_transient_forwarding.py.
            end = addr + size
            for start, (s_size, s_value) in reversed(stores.items()):
                if start <= addr and end <= start + s_size:
                    return (s_value >> ((addr - start) << 3)) \
                        & ((1 << (size << 3)) - 1)
        pa = self._translate(addr, user_mode=user)
        self.mem.hier.access_data(pa & ~63)
        self._counts[_IDX_TRANSIENT_LOAD] += 1
        return self.mem.phys.read_int(pa, size)

    # ------------------------------------------------------------------
    # traps and diagnostics
    # ------------------------------------------------------------------

    def _handle_trap(self, trap: str, instr: Instruction, result) -> None:
        if trap == "hlt":
            raise HaltRequested("hlt executed")
        if self.trap_handler is None:
            raise ReproError(f"unhandled trap {trap!r} at {self.pc:#x}")
        self.trap_handler(self, trap, instr, result)

    def _record(self, source_pc: int, predicted_kind, actual_kind,
                target: int, reach: Reach, *, frontend: bool,
                cross_privilege: bool = False, nested: bool = False) -> None:
        if _REG.enabled:
            (self._m_phantom if frontend else self._m_spectre).value += 1
        if _TRACE.enabled:
            _TRACE.emit(
                "episode", self.cycles, source_pc=source_pc,
                predicted_kind=(predicted_kind.value
                                if predicted_kind else None),
                actual_kind=actual_kind.value, target=target,
                reach=reach.name,
                flavour="phantom" if frontend else "spectre",
                cross_privilege=cross_privilege, nested=nested)
            _TRACE.emit("resteer", self.cycles,
                        source="frontend" if frontend else "backend",
                        pc=source_pc)
        if self.record_episodes:
            self.episodes.append(EpisodeRecord(
                source_pc=source_pc, predicted_kind=predicted_kind,
                actual_kind=actual_kind, target=target, reach=reach,
                frontend_resteer=frontend, cross_privilege=cross_privilege,
                nested=nested, cycle=self.cycles))
