"""The simulated CPU: decoupled frontend semantics with transient episodes.

Execution model
===============

Architectural execution is functional (instruction at a time) with cycle
accounting; microarchitectural speculation is modelled as *episodes*
expanded inline at the moment the real frontend would have performed
them.  Per instruction the CPU:

1. consults the µop cache (hit bypasses fetch+decode, as on hardware);
2. on a µop-cache miss, fetches the instruction bytes through the
   MMU/L1I and decodes them;
3. queries the BPU for a predicted branch source anywhere inside the
   instruction's byte span — the pre-decode prediction of Figure 2.
   Disagreement between the prediction's recorded semantics and the
   decoded reality triggers a **phantom episode** (decoder-detected,
   frontend resteer): transient fetch of the predicted target, transient
   decode into the µop cache, and — if the µarch loses the latency race
   (Zen 1/2) — transient execution of a few µops;
4. executes the instruction architecturally;
5. resolves execute-dependent predictions: wrong indirect/return targets
   and wrong conditional directions trigger **backend episodes**
   (classic Spectre windows) that transiently execute the wrong path,
   with nested phantom episodes allowed inside the window (paper §7.4);
6. trains the BPU with the architectural outcome.

Cache fills performed by episodes are never rolled back — they are the
observation channels and the attack surface.

Execution engines
=================

Two engines implement the model above with identical architectural
results (cycles, PMCs, episodes — pinned by the differential tests):

* the **naive path** (``_step_slow``) interprets every step from
  scratch: µop-cache probe, decode-cache lookup, ``execute()``'s
  mnemonic dispatch;
* the **fast path** compiles, on the second visit to a ``(pc,
  privilege)`` pair, the whole step into one fused closure holding the
  decoded instruction, a specialised executor thunk
  (:func:`~repro.isa.semantics.compile_executor`) and pre-resolved PMC
  counter slots.  Stateful shared models (µop cache, BPU, cache
  hierarchy) are still consulted per step — only Python-level dispatch,
  allocation and attribute traffic is removed, which is what keeps the
  fast path architecturally invisible.

On top of the step thunks the fast path fuses **superblocks**:
straight-line runs of fusible instructions (no branches, traps, fences
or rdtsc) compiled into one generated function with a single entry
guard — a pure BTB probe of the block's (set, tag) footprint against
the live predictor keys.  A probe hit bails to the per-step path so
phantom episodes replay exactly; a miss proves the whole run is
prediction-free and executes it with batched counter accounting.
Blocks are retired whole by :meth:`CPU.invalidate_code` (writes landing
anywhere inside the block, via the interior-pc index) and wholesale
when the page-table generation moves.  Quiescent stretches
(:meth:`CPU.idle`) are advanced by an event scheduler that jumps
between deadlines instead of ticking (see ``pipeline/sched.py``).

``PHANTOM_REPRO_FASTPATH=0`` selects the naive path;
``superblocks=0``/``quiesce=0`` disable individual fast-path layers
(see ``docs/performance.md``).  Step thunks are dropped by
:meth:`CPU.invalidate_code`; privilege is part of the cache key, so
kernel and user executions of the same bytes never share a thunk.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass
from typing import Callable

from ..errors import (DecodeError, HaltRequested, PageFault, ReproError,
                      SimulationLimit, TruncatedError)
from ..fastpath import fastpath_config
from ..frontend import BPU, Prediction, UopCache
from ..isa import (SUPERBLOCK_FUSIBLE, ArchState, BranchKind, Instruction,
                   Mnemonic, compile_executor, decode, execute, uop_count)
from ..isa.semantics import SUPERBLOCK_HELPERS, superblock_arch_lines
from ..memory import MemorySystem
from ..params import MASK64, PAGE_SHIFT, PAGE_SIZE, canonical
from ..telemetry import metrics as _metrics
from ..telemetry.spans import SPANS as _SPANS
from ..telemetry.trace import TRACE as _TRACE
from .config import Microarch
from .pmc import PMC
from .sched import EventScheduler

_REG = _metrics.REGISTRY

_MAX_INSTR_BYTES = 16

#: Pre-resolved PMC counter slots (see :meth:`PMC.index`): the hot path
#: bumps ``pmc.counts`` entries directly instead of hashing event names.
_IDX_CYCLES = PMC.index("cycles")
_IDX_INSTRUCTIONS = PMC.index("instructions")
_IDX_OP_HIT = PMC.index("op_cache_hit")
_IDX_OP_MISS = PMC.index("op_cache_miss")
_IDX_DE_DIS = PMC.index("de_dis_uops_from_decoder")
_IDX_L1I_ACCESS = PMC.index("l1i_access")
_IDX_L1I_MISS = PMC.index("l1i_miss")
_IDX_L1D_ACCESS = PMC.index("l1d_access")
_IDX_L1D_MISS = PMC.index("l1d_miss")
_IDX_BRANCH_RETIRED = PMC.index("branch_retired")
_IDX_BRANCH_MISPREDICT = PMC.index("branch_mispredict")
_IDX_RESTEER_FRONTEND = PMC.index("resteer_frontend")
_IDX_RESTEER_BACKEND = PMC.index("resteer_backend")
_IDX_PHANTOM_FETCH = PMC.index("phantom_fetch")
_IDX_PHANTOM_DECODE = PMC.index("phantom_decode")
_IDX_PHANTOM_EXEC_UOPS = PMC.index("phantom_exec_uops")
_IDX_TRANSIENT_LOAD = PMC.index("transient_load")

#: Branch kinds for which a missing prediction means straight-line
#: speculation (the only kinds :meth:`CPU._sequential_speculation` acts
#: on) — lets compiled step thunks skip the call entirely otherwise.
_SLS_KINDS = frozenset((BranchKind.DIRECT, BranchKind.CALL_DIRECT,
                        BranchKind.INDIRECT, BranchKind.CALL_INDIRECT,
                        BranchKind.RETURN))

#: Mnemonics whose execution raises a trap (ends transient windows too).
_TRAP_MNEMONICS = frozenset((Mnemonic.SYSCALL, Mnemonic.SYSRET,
                             Mnemonic.HLT, Mnemonic.UD2))

#: Step/transient-cache miss sentinel (``None`` is a valid cached value
#: in the transient cache: "bytes at this pc do not decode").
_UNCOMPILED = object()

#: Superblock sizing: fusion needs enough instructions to amortize the
#: entry probe; the cap bounds generated-code size and the span one
#: invalidation can retire.
_SB_MIN_INSTRS = 3
_SB_MAX_INSTRS = 64


class Reach(enum.IntEnum):
    """How far a transient episode advanced in the pipeline."""

    NONE = 0
    FETCH = 1
    DECODE = 2
    EXECUTE = 3


@dataclass
class EpisodeRecord:
    """Diagnostic record of one speculation episode (tests only —
    exploits must use the observation channels instead)."""

    source_pc: int
    predicted_kind: BranchKind | None
    actual_kind: BranchKind
    target: int
    reach: Reach
    frontend_resteer: bool
    cross_privilege: bool = False
    nested: bool = False
    cycle: int = 0


@dataclass
class MSRState:
    """Model-specific-register bits controlling the mitigations."""

    suppress_bp_on_non_br: bool = False
    auto_ibrs: bool = False


class _TransientState:
    """Register/store state of an in-flight transient path.

    The load/store callbacks the executor needs are pre-bound here once
    per window — they used to be re-allocated as lambdas on every µop
    iteration of ``_transient_run``.  ``stores`` keeps *program order*:
    a store to an address that already has a buffered entry re-inserts
    it, so youngest-first scans (store-to-load forwarding) see the
    latest write last-inserted.
    """

    __slots__ = ("arch", "stores", "load", "store")

    def __init__(self, cpu: "CPU", arch: ArchState) -> None:
        self.arch = arch
        self.stores: dict[int, tuple[int, int]] = {}
        user = not cpu.kernel_mode

        def load(addr: int, size: int) -> int:
            return cpu._transient_load(addr, size, self, user)

        def store(addr: int, size: int, value: int) -> None:
            stores = self.stores
            if addr in stores:
                del stores[addr]
            stores[addr] = (size, value)

        self.load = load
        self.store = store


class CPU:
    """One simulated core."""

    def __init__(self, uarch: Microarch, mem: MemorySystem,
                 rng: random.Random | None = None,
                 fastpath: bool | None = None, *,
                 superblocks: bool | None = None,
                 quiesce: bool | None = None) -> None:
        self.uarch = uarch
        self.mem = mem
        self.rng = rng or random.Random(0)
        self.bpu = BPU(uarch.btb, btb_ways=uarch.btb_ways)
        self.uopcache = UopCache()
        self.pmc = PMC()
        self.state = ArchState()
        self.msr = MSRState()
        self.pc = 0
        self.cycles = 0
        self.kernel_mode = False
        self.episodes: list[EpisodeRecord] = []
        self.record_episodes = False
        #: Set by the Machine: handle syscall/sysret/hlt/ud2 traps.
        self.trap_handler = None
        #: Optional per-instruction observer: fn(pc, instr) called after
        #: decode, before execution (used by the analysis tracer).
        self.instr_hook = None
        self._decode_cache: dict[int, Instruction] = {}
        #: Engine selection; defaults to the memory system's, so one
        #: PHANTOM_REPRO_FASTPATH read governs the whole machine.  The
        #: layer flags (superblock fusion, quiescence skipping) default
        #: to the environment's selective syntax and only apply when the
        #: fast path itself is on.
        self._fastpath = mem.fastpath if fastpath is None else bool(fastpath)
        _config = fastpath_config()
        self._superblocks = self._fastpath and (
            _config.superblocks if superblocks is None
            else bool(superblocks))
        self._quiesce = self._fastpath and (
            _config.quiesce if quiesce is None else bool(quiesce))
        #: Memoized (or naive — same results) translation entry point.
        self._translate = mem.translate
        #: L1-miss heuristic threshold, read once: an access is a miss
        #: when its service latency reached L2.
        self._l1_miss_threshold = mem.hier.params.l2_latency
        self._counts = self.pmc.counts
        #: Fused step thunks, keyed by pc, split per privilege level
        #: (the (pc, kernel_mode) step-cache key).
        self._step_cache_user: dict[int, Callable[[], None]] = {}
        self._step_cache_kernel: dict[int, Callable[[], None]] = {}
        #: Transient-path decode cache: pc -> (instr, thunk, µops,
        #: ends_window) or None for undecodable bytes.  Valid only for
        #: the page-table generation it was filled under.
        self._transient_cache: dict[int, tuple | None] = {}
        self._transient_gen = mem.aspace.generation
        #: Page -> pcs with any cached artifact on that page, so
        #: invalidate_code touches only the affected pages.
        self._code_pages: dict[int, set[int]] = {}
        #: Superblock caches: head pc -> (instruction count, dispatch
        #: fn), or None for heads pinned unfusible/too short; split per
        #: privilege like the step caches.  Valid only for the
        #: page-table generation they were compiled under.
        self._sb_user: dict[int, tuple[int, Callable[[], int]] | None] = {}
        self._sb_kernel: dict[int, tuple[int, Callable[[], int]] | None] = {}
        #: pc -> {(kernel_mode, head_pc)} of every block containing that
        #: pc, so invalidate_code retires whole blocks from writes that
        #: land mid-block (the split/retire contract).
        self._sb_index: dict[int, set[tuple[bool, int]]] = {}
        self._sb_gen = mem.aspace.generation
        #: Transient superblocks: the same fusion, compiled against the
        #: *transient* load/store callbacks and guarded by one whole-run
        #: BTB probe (sound because branches only train at retirement,
        #: so the BTB is static for an entire speculative window).  Head
        #: pc -> (µop count, fall-through pc, fn) or None, split per
        #: privilege; indexed for invalidation like ``_sb_index``.
        self._tb_user: dict[int, tuple[int, int, Callable] | None] = {}
        self._tb_kernel: dict[int, tuple[int, int, Callable] | None] = {}
        self._tb_index: dict[int, set[tuple[bool, int]]] = {}
        #: Superblock/quiescence statistics.  Plain attributes, *not*
        #: metrics counters: only the fast engine compiles blocks, and
        #: engine manifests must stay fingerprint-identical.
        self.sb_compiled = 0
        self.sb_fused_instructions = 0
        self.sb_invalidated = 0
        self.sb_probe_bails = 0
        self.tb_compiled = 0
        self.cycles_skipped = 0
        #: Deferred-event scheduler driving :meth:`idle`.
        self.sched = EventScheduler()
        self._m_phantom = _metrics.counter("speculation_episodes",
                                           flavour="phantom")
        self._m_spectre = _metrics.counter("speculation_episodes",
                                           flavour="spectre")

    # ------------------------------------------------------------------
    # decode path
    # ------------------------------------------------------------------

    def invalidate_code(self, lo: int, hi: int) -> None:
        """Drop cached artifacts overlapping [lo, hi) (self-modifying code).

        Removes decoded instructions, compiled step thunks, superblocks
        and transient decode entries whose bytes may intersect the
        written range, and invalidates the µop-cache windows covering it
        — µops cracked from the old bytes must not serve hits after a
        code rewrite.  Cached pcs are indexed by page, so the walk
        touches only the pages the write spans instead of scanning every
        cached decode.  A write landing mid-superblock retires the whole
        owning block (looked up through ``_sb_index``); the next
        dispatch at its head recompiles over whatever decodes survive,
        which is how blocks split around rewritten bytes.
        """
        if hi <= lo:
            return
        decode_cache = self._decode_cache
        step_user = self._step_cache_user
        step_kernel = self._step_cache_kernel
        transient = self._transient_cache
        sb_user = self._sb_user
        sb_kernel = self._sb_kernel
        sb_index = self._sb_index
        tb_user = self._tb_user
        tb_kernel = self._tb_kernel
        tb_index = self._tb_index
        code_pages = self._code_pages
        lo_reach = lo - _MAX_INSTR_BYTES
        for page in range((lo_reach + 1) >> PAGE_SHIFT,
                          ((hi - 1) >> PAGE_SHIFT) + 1):
            pcs = code_pages.get(page)
            if not pcs:
                continue
            stale = [pc for pc in pcs if lo_reach < pc < hi]
            for pc in stale:
                pcs.discard(pc)
                decode_cache.pop(pc, None)
                step_user.pop(pc, None)
                step_kernel.pop(pc, None)
                transient.pop(pc, None)
                owners = sb_index.pop(pc, None)
                if owners:
                    for kernel, head in owners:
                        target = sb_kernel if kernel else sb_user
                        if target.pop(head, None) is not None:
                            self.sb_invalidated += 1
                sb_user.pop(pc, None)
                sb_kernel.pop(pc, None)
                owners = tb_index.pop(pc, None)
                if owners:
                    for kernel, head in owners:
                        target = tb_kernel if kernel else tb_user
                        if target.pop(head, None) is not None:
                            self.sb_invalidated += 1
                tb_user.pop(pc, None)
                tb_kernel.pop(pc, None)
            if not pcs:
                del code_pages[page]
        line = (lo_reach + 1) & ~63
        while line < hi:
            self.uopcache.invalidate_window(line)
            line += 64

    def _register_code_pc(self, pc: int) -> None:
        """Index *pc* for page-granular invalidation."""
        page = pc >> PAGE_SHIFT
        pcs = self._code_pages.get(page)
        if pcs is None:
            pcs = self._code_pages[page] = set()
        pcs.add(pc)

    def _count_l1(self, cyc: int, access_idx: int, miss_idx: int) -> None:
        """Count one L1 access, classifying it as a miss when its
        service latency reached L2 — the shared heuristic of the I- and
        D-side paths (pinned by tests/pipeline/test_step_cache.py)."""
        counts = self._counts
        counts[access_idx] += 1
        if cyc >= self._l1_miss_threshold:
            counts[miss_idx] += 1

    def _fetch_bytes(self, pc: int, length: int) -> bytes:
        """Fetch *length* raw bytes at *pc* through the MMU and L1I."""
        raw, cyc = self.mem.fetch_code(pc, length,
                                       user_mode=not self.kernel_mode)
        self.cycles += cyc
        self._count_l1(cyc, _IDX_L1I_ACCESS, _IDX_L1I_MISS)
        return raw

    def _decode_at(self, pc: int) -> Instruction:
        """Decode the instruction at *pc*, fetching block by block.

        Fetch granularity is the µarch's aligned fetch block: the block
        after the instruction is only touched when the instruction
        actually crosses the boundary — matching hardware and keeping
        the fall-through line cold for Phantom's observation channels.
        """
        instr = self._decode_cache.get(pc)
        if instr is not None:
            return instr
        block = self.uarch.fetch_block
        block_end = (pc & ~(block - 1)) + block
        raw = self._fetch_bytes(pc, min(block_end - pc, _MAX_INSTR_BYTES))
        try:
            instr = decode(raw)
        except TruncatedError:
            try:
                raw += self._fetch_bytes(pc + len(raw),
                                         _MAX_INSTR_BYTES - len(raw))
            except PageFault as exc:
                raise PageFault(canonical(pc + len(raw)), present=False,
                                user=not self.kernel_mode, exec_=True) \
                    from exc
            instr = decode(raw)   # DecodeError propagates
        self._decode_cache[pc] = instr
        self._register_code_pc(pc)
        self.cycles += self.uarch.decode_latency
        if self.uarch.next_line_prefetch:
            self._prefetch_target((pc & ~63) + 64, count_event=False)
        return instr

    # ------------------------------------------------------------------
    # memory callbacks for the executor
    # ------------------------------------------------------------------

    def _load(self, addr: int, size: int) -> int:
        value, cyc = self.mem.read_data(addr, size,
                                        user_mode=not self.kernel_mode)
        self.cycles += cyc
        self._count_l1(cyc, _IDX_L1D_ACCESS, _IDX_L1D_MISS)
        return value

    def _store(self, addr: int, size: int, value: int) -> None:
        cyc = self.mem.write_data(addr, size, value,
                                  user_mode=not self.kernel_mode)
        self.cycles += cyc
        self._counts[_IDX_L1D_ACCESS] += 1

    def _rdtsc(self) -> int:
        return self.cycles

    # ------------------------------------------------------------------
    # architectural stepping
    # ------------------------------------------------------------------

    def run(self, pc: int | None = None, *,
            max_instructions: int = 2_000_000) -> None:
        """Run until ``hlt`` (raises HaltRequested) or the budget expires."""
        if pc is not None:
            self.pc = canonical(pc)
        if self._fastpath and self._superblocks:
            self._run_superblocks(max_instructions)
        elif self._fastpath:
            user_cache = self._step_cache_user
            kernel_cache = self._step_cache_kernel
            for _ in range(max_instructions):
                cache = kernel_cache if self.kernel_mode else user_cache
                thunk = cache.get(self.pc)
                if thunk is not None:
                    thunk()
                else:
                    self._step_and_compile(cache)
        else:
            for _ in range(max_instructions):
                self._step_slow()
        raise SimulationLimit(
            f"exceeded {max_instructions} instructions at pc={self.pc:#x}")

    def _run_superblocks(self, max_instructions: int) -> None:
        """The fused-dispatch run loop of the superblock engine.

        Per iteration: try the superblock cache for the current pc and,
        when a block is installed, its probe passes and its instruction
        count fits the remaining budget, consume the whole block in one
        call; otherwise fall back to exactly one per-step thunk.  The
        budget is decremented by real instructions retired, so the
        "limit" outcome fires after precisely *max_instructions* steps —
        identical to the per-step loops.  Superblock dispatch is skipped
        while a per-instruction hook or retire tracing is active (both
        observe individual steps) and whenever the page-table generation
        moved (remaps change which bytes live at a pc; the caches are
        cleared wholesale, mirroring the transient cache).
        """
        user_cache = self._step_cache_user
        kernel_cache = self._step_cache_kernel
        sb_user = self._sb_user
        sb_kernel = self._sb_kernel
        aspace = self.mem.aspace
        remaining = max_instructions
        while remaining > 0:
            if self.instr_hook is None and not _TRACE.enabled:
                if self._sb_gen != aspace.generation:
                    sb_user.clear()
                    sb_kernel.clear()
                    self._sb_index.clear()
                    self._sb_gen = aspace.generation
                kernel_mode = self.kernel_mode
                sbc = sb_kernel if kernel_mode else sb_user
                pc_now = self.pc
                entry = sbc.get(pc_now, _UNCOMPILED)
                if entry is _UNCOMPILED:
                    entry = self._compile_superblock_at(pc_now, sbc,
                                                        kernel_mode)
                if entry is not None:
                    n, fn = entry
                    if n <= remaining:
                        done = fn()
                        if done:
                            remaining -= done
                            continue
            cache = kernel_cache if self.kernel_mode else user_cache
            thunk = cache.get(self.pc)
            if thunk is not None:
                thunk()
            else:
                self._step_and_compile(cache)
            remaining -= 1

    def step(self) -> None:
        """Execute one architectural instruction (plus its episodes)."""
        if self._fastpath:
            cache = self._step_cache_kernel if self.kernel_mode \
                else self._step_cache_user
            thunk = cache.get(self.pc)
            if thunk is not None:
                thunk()
            else:
                self._step_and_compile(cache)
        else:
            self._step_slow()

    def _step_slow(self) -> None:
        """The naive engine: interpret one step from scratch."""
        pc = self.pc
        uop_hit = self.uopcache.access(pc)
        if uop_hit:
            self._counts[_IDX_OP_HIT] += 1
            self.cycles += 1
        else:
            self._counts[_IDX_OP_MISS] += 1
            if self.msr.suppress_bp_on_non_br \
                    and self.uarch.supports_suppress_bp_on_non_br:
                # SuppressBPOnNonBr withholds next-fetch predictions
                # until bytes are known to be a branch, costing a little
                # frontend lookahead on the decode path (measured at
                # well under 1% by the paper's UnixBench runs, §6.3).
                self.cycles += 2
        instr = self._decode_at(pc)
        if not uop_hit:
            self._counts[_IDX_DE_DIS] += uop_count(instr)
        if self.instr_hook is not None:
            self.instr_hook(pc, instr)
        if _TRACE.enabled:
            _TRACE.emit("retire", self.cycles, pc=pc, text=str(instr),
                        kernel_mode=self.kernel_mode)

        prediction = self.bpu.predict_in_block(
            pc, instr.length, kernel_mode=self.kernel_mode)

        # Phantom: decoder-detectable disagreement between the
        # prediction's semantics and the decoded instruction.
        prediction = self._frontend_check(pc, instr, prediction)

        result = execute(instr, pc, self.state, self._load, self._store,
                         rdtsc=self._rdtsc)
        self._counts[_IDX_INSTRUCTIONS] += 1
        self.cycles += 1

        self._resolve_and_train(pc, instr, result, prediction)

        if result.trap is not None:
            self._handle_trap(result.trap, instr, result)
            return
        self.pc = canonical(result.next_pc)

    def _step_and_compile(self, cache: dict[int, Callable[[], None]]) -> None:
        """Cold visit: run the naive engine once, then install the fused
        step thunk for subsequent visits.

        The naive step performs the first-visit work (fetch/decode cycle
        charging, fault propagation with the exact naive ordering), so
        compilation itself is architecturally free; the thunk compiled
        afterwards replays the steady-state step, whose decode-cache hit
        can no longer fetch or fault.

        With span tracing active each cold visit is bracketed by a
        ``fastpath:compile`` span (warm visits run bare thunks — the
        compile/execute split a trace shows is exactly the dual-engine
        split).  Compilation is deliberately *not* a metrics counter:
        only the fast engine compiles, and engine manifests must stay
        fingerprint-identical.
        """
        if _SPANS.enabled:
            with _SPANS.span("fastpath:compile", pc=hex(self.pc)):
                self._cold_step(cache)
        else:
            self._cold_step(cache)

    def _cold_step(self, cache: dict[int, Callable[[], None]]) -> None:
        pc = self.pc
        kernel_mode = self.kernel_mode
        try:
            self._step_slow()
        finally:
            # Compile even when the step raised (HLT's HaltRequested, a
            # faulting load): the thunk reproduces the raise exactly, and
            # skipping the cache here made every trap-terminated loop —
            # e.g. a syscall round trip ending in hlt — pay a full slow
            # step per visit forever.  A pc whose decode was invalidated
            # during its own step (self-modifying write) stays cold.
            instr = self._decode_cache.get(pc)
            if instr is not None:
                cache[pc] = self._compile_step(pc, instr, kernel_mode)
                self._register_code_pc(pc)

    def _compile_step(self, pc: int, instr: Instruction,
                      kernel_mode: bool) -> Callable[[], None]:
        """Fuse one steady-state step of *instr* at *pc* into a closure.

        Everything derivable from the decoded instruction is resolved
        here: the executor thunk, µop count, branch kind, trap
        potential, trace text.  The closure still consults every
        stateful shared model (µop cache, BPU, PMC, cache hierarchy) —
        its results must be byte-identical to ``_step_slow``.
        """
        cpu = self
        counts = self._counts
        uop_access = self.uopcache.access
        predict = self.bpu.predict_in_block
        frontend_check = self._frontend_check
        resolve = self._resolve_and_train
        msr = self.msr
        state = self.state
        load = self._load
        store = self._store
        rdtsc = self._rdtsc
        suppress_supported = self.uarch.supports_suppress_bp_on_non_br
        exec_thunk = compile_executor(instr, pc)
        n_uops = uop_count(instr)
        length = instr.length
        kind = instr.branch_kind
        is_branch = kind is not BranchKind.NONE
        sls_candidate = kind in _SLS_KINDS
        can_trap = instr.mnemonic in _TRAP_MNEMONICS
        text = str(instr)
        # Pure pre-probe (same argument as _fuse_superblock): the
        # instruction's (set, tag) footprint is a static function of its
        # address range, and predict_in_block on a full miss returns
        # None with zero side effects.  Intersecting the footprint with
        # the BTB's live key set — re-read every step, so training and
        # eviction are seen immediately — skips the per-byte scan for
        # the overwhelmingly common untrained pc.
        keys = self.bpu.btb.block_keys(pc, length, kernel_mode=kernel_mode)
        live = self.bpu.btb.live_keys

        def step_thunk() -> None:
            if uop_access(pc):
                counts[_IDX_OP_HIT] += 1
                cpu.cycles += 1
            else:
                counts[_IDX_OP_MISS] += 1
                if msr.suppress_bp_on_non_br and suppress_supported:
                    cpu.cycles += 2
                counts[_IDX_DE_DIS] += n_uops
            hook = cpu.instr_hook
            if hook is not None:
                hook(pc, instr)
            if _TRACE.enabled:
                _TRACE.emit("retire", cpu.cycles, pc=pc, text=text,
                            kernel_mode=kernel_mode)
            if keys.isdisjoint(live):
                prediction = None
                if sls_candidate:
                    cpu._sequential_speculation(pc, instr)
            else:
                prediction = predict(pc, length, kernel_mode=kernel_mode)
                if prediction is not None:
                    prediction = frontend_check(pc, instr, prediction)
                elif sls_candidate:
                    cpu._sequential_speculation(pc, instr)
            result = exec_thunk(state, load, store, rdtsc)
            counts[_IDX_INSTRUCTIONS] += 1
            cpu.cycles += 1
            if is_branch:
                resolve(pc, instr, result, prediction)
            if can_trap and result.trap is not None:
                cpu._handle_trap(result.trap, instr, result)
                return
            cpu.pc = canonical(result.next_pc)

        return step_thunk

    # ------------------------------------------------------------------
    # superblock compilation
    # ------------------------------------------------------------------

    def _compile_superblock_at(self, head: int, sbc: dict,
                               kernel_mode: bool):
        """Try to fuse a superblock headed at *head*; returns the cache
        entry ``(instruction count, dispatch fn)`` or None.

        Compilation is lazy and decode-cache driven: a head that has not
        been decoded yet returns None *without* caching a verdict (the
        step path warms the decode cache on the first pass; once-through
        code never pays for fusion), while a head whose straight-line
        run is pinned too short by decoded bytes is marked None so the
        dispatch loop never re-walks it.  The run extends while
        instructions are decoded, fusible and *start* on the head's page
        (the final instruction's bytes may straddle into the next page —
        ``invalidate_code``'s reach-back covers that overhang), up to
        ``_SB_MAX_INSTRS``.
        """
        decode_cache = self._decode_cache
        instr = decode_cache.get(head)
        if instr is None:
            return None
        if instr.mnemonic not in SUPERBLOCK_FUSIBLE:
            sbc[head] = None
            return None
        page = head >> PAGE_SHIFT
        run: list[tuple[int, Instruction]] = []
        pc = head
        stopped_undecoded = False
        while True:
            run.append((pc, instr))
            if len(run) == _SB_MAX_INSTRS:
                break
            pc = canonical((pc + instr.length) & MASK64)
            if pc >> PAGE_SHIFT != page:
                break
            instr = decode_cache.get(pc)
            if instr is None:
                stopped_undecoded = True
                break
            if instr.mnemonic not in SUPERBLOCK_FUSIBLE:
                break
        if len(run) < _SB_MIN_INSTRS:
            if not stopped_undecoded:
                sbc[head] = None
            return None
        if _SPANS.enabled:
            with _SPANS.span("fastpath:superblock", pc=hex(head),
                             instructions=len(run)):
                entry = self._fuse_superblock(head, run, kernel_mode)
        else:
            entry = self._fuse_superblock(head, run, kernel_mode)
        sbc[head] = entry
        sb_index = self._sb_index
        key = (kernel_mode, head)
        for pc, _ in run:
            owners = sb_index.get(pc)
            if owners is None:
                owners = sb_index[pc] = set()
            owners.add(key)
        self.sb_compiled += 1
        self.sb_fused_instructions += len(run)
        return entry

    def _fuse_superblock(self, head: int, run: list,
                         kernel_mode: bool) -> tuple:
        """Generate the fused dispatch function for one superblock.

        The function's entry guard is a pure BTB probe: the block's
        ``(set, tag)`` footprint — every byte address it spans, hashed
        exactly as ``scan_block`` would — against the BTB's live keys.
        Any intersection means ``predict_in_block`` *could* return a
        prediction somewhere inside the block (aliasing included: the
        probe is in key space, not stored-pc space, so a trainer at an
        unrelated address still hits), and the block bails to the
        per-step path, which reproduces phantom episodes exactly.  A
        disjoint footprint proves every fused instruction's prediction
        query would return None with zero side effects, and non-branch
        instructions do nothing in ``_sequential_speculation``, so
        skipping both calls is exact.  The BTB cannot change mid-block:
        only retired branches train it, and the block contains none.

        Per instruction the generated code replays the steady-state
        step: µop-cache probe with hit/miss/decoder-µop accounting, the
        inlined architectural effect
        (:func:`~repro.isa.semantics.superblock_arch_lines`, effect
        order identical to the executor thunks), retire counting — all
        accumulated in locals and flushed once per dispatch.  A fault
        mid-block flushes the partial accounting and rewinds ``pc`` to
        the faulting instruction, leaving state byte-identical to the
        per-step engines' (pinned by tests/pipeline/test_superblocks.py).
        """
        btb = self.bpu.btb
        last_pc, last = run[-1]
        end = canonical((last_pc + last.length) & MASK64)
        span = last_pc + last.length - head
        keys = btb.block_keys(head, span, kernel_mode=kernel_mode)
        consts: dict = dict(SUPERBLOCK_HELPERS)
        consts.update(
            _cpu=self, _state=self.state, _counts=self._counts,
            _ua=self.uopcache.access, _load=self._load,
            _store=self._store, _msr=self.msr, _keys=keys,
            _live=btb.live_keys, _pcs=tuple(pc for pc, _ in run),
            _IH=_IDX_OP_HIT, _IM=_IDX_OP_MISS, _ID=_IDX_DE_DIS,
            _II=_IDX_INSTRUCTIONS,
        )
        suppress = self.uarch.supports_suppress_bp_on_non_br
        n = len(run)
        src = [
            "def _sb():",
            "    if not _keys.isdisjoint(_live):",
            "        _cpu.sb_probe_bails += 1",
            "        return 0",
            "    regs = _state.regs",
            "    flags = _state.flags",
            "    load = _load",
            "    store = _store",
            "    h = m = dd = r = cyc = 0",
            "    try:",
        ]
        for index, (pc, instr) in enumerate(run):
            src.append(f"        if _ua({pc:#x}):")
            src.append("            h += 1; cyc += 1")
            src.append("        else:")
            src.append(f"            m += 1; dd += {uop_count(instr)}")
            if suppress:
                src.append("            if _msr.suppress_bp_on_non_br:")
                src.append("                cyc += 2")
            for line in superblock_arch_lines(instr, pc, index, consts):
                src.append("        " + line)
            src.append("        r += 1; cyc += 1")
        src += [
            "    except BaseException:",
            "        _counts[_IH] += h; _counts[_IM] += m",
            "        _counts[_ID] += dd; _counts[_II] += r",
            "        _cpu.cycles += cyc",
            "        _cpu.pc = _pcs[r]",
            "        raise",
            "    _counts[_IH] += h; _counts[_IM] += m",
            "    _counts[_ID] += dd; _counts[_II] += r",
            "    _cpu.cycles += cyc",
            f"    _cpu.pc = {end:#x}",
            f"    return {n}",
        ]
        exec(compile("\n".join(src), f"<superblock@{head:#x}>", "exec"),
             consts)
        return (n, consts["_sb"])

    def _compile_transient_block(self, head: int, tbc: dict,
                                 kernel_mode: bool):
        """Fuse a straight-line run of *transient* decode entries.

        The speculative-window analogue of ``_compile_superblock_at``:
        the same fusible instruction set, the same lazy policy (only
        fuse across entries the per-µop path already warmed; pin None
        only when decoded bytes prove the run too short), but compiled
        against the window's private load/store callbacks, with no PMC
        or cycle effects — transient execution has none.  One entry
        probe of the whole run's BTB key footprint replaces the per-µop
        nested-prediction query: the BTB is static for an entire window
        (branches only train at retirement), so a disjoint footprint
        proves every fused µop's query would return None with zero side
        effects; any intersection bails (return -1) to the per-µop
        path, which replays nested phantom episodes exactly.

        Per instruction the generated code replays the window walk's
        I-side effects — line prefetch memoized on the L2 tick
        (back-invalidation detector), µop-window fill at window
        boundaries — and tracks µops completed, so a faulting load or
        store mid-block reports exactly the µops the per-µop loop would
        have counted before breaking.
        """
        cache = self._transient_cache
        entry = cache.get(head, _UNCOMPILED)
        if entry is _UNCOMPILED:
            return None
        run: list[tuple[int, tuple]] = []
        pc = head
        page = head >> PAGE_SHIFT
        stopped_cold = False
        while True:
            if entry is None or entry[0].mnemonic not in SUPERBLOCK_FUSIBLE:
                break
            if entry[7] != kernel_mode:
                # Entry warmed under the other privilege: its cached
                # translation is unusable here.  Don't pin a verdict.
                stopped_cold = True
                break
            run.append((pc, entry))
            if len(run) == _SB_MAX_INSTRS:
                break
            pc = canonical((pc + entry[4]) & MASK64)
            if pc >> PAGE_SHIFT != page:
                break
            entry = cache.get(pc, _UNCOMPILED)
            if entry is _UNCOMPILED:
                stopped_cold = True
                break
        if len(run) < _SB_MIN_INSTRS:
            if not stopped_cold:
                tbc[head] = None
            return None
        btb = self.bpu.btb
        last_pc, last = run[-1]
        end = canonical((last_pc + last[4]) & MASK64)
        span = last_pc + last[4] - head
        consts: dict = dict(SUPERBLOCK_HELPERS)
        consts.update(
            _cpu=self,
            _keys=btb.block_keys(head, span, kernel_mode=kernel_mode),
            _live=btb.live_keys, _l2=self.mem.hier.l2,
            _prefetch=self.mem.hier.prefetch_instr,
            _fill=self.uopcache.fill, _PF=PageFault,
        )
        src = [
            "def _tb(arch, load, store):",
            "    if not _keys.isdisjoint(_live):",
            "        _cpu.sb_probe_bails += 1",
            "        return -1",
            "    regs = arch.regs",
            "    flags = arch.flags",
            "    done = 0",
            "    try:",
        ]
        total = 0
        prev_line = None
        prev_window = None
        for index, (pc, entry) in enumerate(run):
            line = entry[8] & ~63
            window = pc >> 6
            if line != prev_line:
                src.append(f"        _prefetch({line:#x})")
                src.append("        _lt = _l2._tick")
                prev_line = line
            else:
                src.append("        if _l2._tick != _lt:")
                src.append(f"            _prefetch({line:#x})")
                src.append("            _lt = _l2._tick")
            if window != prev_window:
                src.append(f"        _fill({pc:#x})")
                prev_window = window
            for arch_line in superblock_arch_lines(entry[0], pc, index,
                                                   consts):
                src.append("        " + arch_line)
            total += entry[2]
            src.append(f"        done = {total}")
        src += [
            "    except _PF:",
            "        return done",
            f"    return {total}",
        ]
        if _SPANS.enabled:
            with _SPANS.span("fastpath:superblock", pc=hex(head),
                             instructions=len(run), transient=True):
                exec(compile("\n".join(src),
                             f"<transientblock@{head:#x}>", "exec"), consts)
        else:
            exec(compile("\n".join(src),
                         f"<transientblock@{head:#x}>", "exec"), consts)
        block = (total, end, consts["_tb"])
        tbc[head] = block
        tb_index = self._tb_index
        key = (kernel_mode, head)
        for pc, _ in run:
            owners = tb_index.get(pc)
            if owners is None:
                owners = tb_index[pc] = set()
            owners.add(key)
        self.tb_compiled += 1
        return block

    # ------------------------------------------------------------------
    # quiescence
    # ------------------------------------------------------------------

    def idle(self, cycles: int) -> None:
        """Advance through *cycles* quiescent cycles, firing due events.

        Quiescent cycles retire nothing; their only observable effects
        are the ``cycles`` clock, the idle-cycle PMC slot and whatever
        the scheduled event callbacks do.  The ticked mode replays them
        one by one; the event-skipped mode (fast path default) jumps
        straight between event deadlines and applies the per-cycle
        counter effect arithmetically.  Overdue events — armed for a
        deadline the instruction stream has already run past — fire on
        the first idle cycle in both modes.  Cycle-exact equivalence of
        the two modes is pinned by tests/pipeline/test_quiescence.py.
        """
        if cycles <= 0:
            return
        sched = self.sched
        counts = self._counts
        end = self.cycles + cycles
        if self._quiesce:
            while True:
                deadline = sched.next_deadline()
                if deadline is None:
                    break
                now = self.cycles
                target = deadline if deadline > now else now + 1
                if target > end:
                    break
                dt = target - now
                self.cycles = target
                counts[_IDX_CYCLES] += dt
                self.cycles_skipped += dt
                callback = sched.pop_due(target)
                while callback is not None:
                    callback(target)
                    callback = sched.pop_due(target)
            dt = end - self.cycles
            if dt > 0:
                self.cycles = end
                counts[_IDX_CYCLES] += dt
                self.cycles_skipped += dt
        else:
            while self.cycles < end:
                self.cycles += 1
                counts[_IDX_CYCLES] += 1
                now = self.cycles
                callback = sched.pop_due(now)
                while callback is not None:
                    callback(now)
                    callback = sched.pop_due(now)

    # ------------------------------------------------------------------
    # frontend (pre-decode) prediction handling
    # ------------------------------------------------------------------

    def _frontend_check(self, pc: int, instr: Instruction,
                        prediction: Prediction | None) -> Prediction | None:
        """Handle decoder-detectable mispredictions.

        Returns the prediction if it survives decode (execute-dependent
        semantics agree) so the backend can verify it; returns None when
        the decoder already resteered (phantom episode performed).
        """
        if prediction is None:
            self._sequential_speculation(pc, instr)
            return None
        actual_kind = instr.branch_kind if prediction.source_pc == pc \
            else BranchKind.NONE
        predicted_kind = prediction.kind

        if predicted_kind is actual_kind:
            if actual_kind in (BranchKind.DIRECT, BranchKind.CALL_DIRECT,
                               BranchKind.CONDITIONAL):
                # PC-relative displacements are decodable: the decoder
                # verifies the target immediately (the asymmetric
                # different-displacement cases of Table 1).  For jcc the
                # *direction* still resolves at execute.
                if prediction.target != instr.target(pc):
                    self._phantom(pc, prediction, actual_kind)
                    return None
            if (self.msr.auto_ibrs and self.uarch.supports_auto_ibrs
                    and prediction.cross_privilege
                    and actual_kind.is_execute_dependent):
                # AutoIBRS refuses cross-privilege predictions, but only
                # after the predicted target was fetched and decoded
                # (§8.1): model as a phantom-style frontend episode with
                # no execute window.
                self._phantom(pc, prediction, actual_kind)
                return None
            return prediction  # backend will verify target/direction
        # Branch-type confusion: detected at decode, not at execute.
        self._phantom(pc, prediction, actual_kind)
        return None

    def _sequential_speculation(self, pc: int, instr: Instruction) -> None:
        """No prediction: fetch ran sequentially past this instruction.

        For architecturally taken unconditional branches this is
        straight-line speculation of the fall-through bytes, resteered
        by decode (jmp/call) or dispatch (jmp*/ret).  Conditional
        mispredictions are handled by the backend path instead.
        """
        kind = instr.branch_kind
        if kind in _SLS_KINDS:
            if (self.uarch.indirect_victim_opaque
                    and kind in (BranchKind.INDIRECT,
                                 BranchKind.CALL_INDIRECT)):
                # Intel quirk (§6): jmp* victims show no phantom/SLS
                # pipeline signal; prefetching parts still warm the
                # fall-through line.
                if self.uarch.bpu_prefetch:
                    self._prefetch_target((pc + instr.length) & MASK64)
                return
            fall_through = (pc + instr.length) & MASK64
            exec_uops = self.uarch.phantom_exec_uops
            if self.msr.suppress_bp_on_non_br \
                    and self.uarch.supports_suppress_bp_on_non_br:
                # SLS follows from the *absence* of a branch prediction,
                # which is exactly what this bit suppresses speculation
                # on; transient execute stops, fetch/decode do not (O4).
                exec_uops = 0
            reach = self._transient_target(fall_through, exec_uops,
                                           state=None)
            self._counts[_IDX_RESTEER_FRONTEND] += 1
            self.cycles += self.uarch.frontend_resteer_latency
            self._record(pc, None, kind, fall_through, reach,
                         frontend=True)

    def _phantom(self, pc: int, prediction: Prediction,
                 actual_kind: BranchKind) -> None:
        """Decoder-detected misprediction: the Phantom episode."""
        exec_uops = self.uarch.phantom_exec_uops
        if (self.msr.suppress_bp_on_non_br
                and self.uarch.supports_suppress_bp_on_non_br
                and actual_kind is BranchKind.NONE):
            exec_uops = 0    # O4: IF and ID still happen
        if (self.msr.auto_ibrs and self.uarch.supports_auto_ibrs
                and prediction.cross_privilege):
            exec_uops = 0    # O5: IF (and ID) still happen
        if (self.uarch.indirect_victim_opaque
                and actual_kind in (BranchKind.INDIRECT,
                                    BranchKind.CALL_INDIRECT)):
            # Intel quirk: jmp* victims show no phantom *pipeline*
            # signal (§6) — but parts with BPU-assisted prefetch still
            # pull the predicted target into the I-cache ("sometimes
            # not even IF" distinguishes the parts without it).
            reach = Reach.NONE
            if self.uarch.bpu_prefetch:
                reach = self._prefetch_target(prediction.target)
            self._counts[_IDX_RESTEER_FRONTEND] += 1
            self._record(pc, prediction.kind, actual_kind,
                         prediction.target, reach, frontend=True,
                         cross_privilege=prediction.cross_privilege)
            return
        reach = self._transient_target(prediction.target, exec_uops,
                                       state=None)
        self._counts[_IDX_RESTEER_FRONTEND] += 1
        self._counts[_IDX_BRANCH_MISPREDICT] += 1
        self.cycles += self.uarch.frontend_resteer_latency
        self._record(pc, prediction.kind, actual_kind, prediction.target,
                     reach, frontend=True,
                     cross_privilege=prediction.cross_privilege)

    # ------------------------------------------------------------------
    # backend resolution and training
    # ------------------------------------------------------------------

    def _resolve_and_train(self, pc: int, instr: Instruction, result,
                           prediction: Prediction | None) -> None:
        kind = instr.branch_kind
        if kind is BranchKind.NONE:
            return
        self._counts[_IDX_BRANCH_RETIRED] += 1

        if kind.is_call:
            self.bpu.call_executed((pc + instr.length) & MASK64)
        rsb_prediction = None
        if kind is BranchKind.RETURN:
            rsb_prediction = self.bpu.ret_executed()

        # Backend verification of execute-dependent predictions.
        if prediction is not None and kind.is_execute_dependent:
            predicted_target = prediction.target
            if kind is BranchKind.CONDITIONAL:
                if result.taken:
                    pass  # predicted taken w/ correct target: correct
                else:
                    # Predicted taken, actually not taken: the taken
                    # path ran transiently (Spectre-v1 windows).
                    self._backend_mispredict(pc, prediction.kind,
                                             kind, predicted_target)
            elif predicted_target != result.target:
                self._backend_mispredict(pc, prediction.kind, kind,
                                         predicted_target)
        elif prediction is None and kind is BranchKind.CONDITIONAL \
                and result.taken:
            # Predicted not-taken (default), actually taken: the
            # fall-through path ran transiently.
            self._backend_mispredict(pc, None, kind,
                                     (pc + instr.length) & MASK64)
        elif prediction is None and kind is BranchKind.RETURN \
                and rsb_prediction is not None \
                and rsb_prediction != result.target:
            self._backend_mispredict(pc, BranchKind.RETURN, kind,
                                     rsb_prediction)

        self.bpu.train_branch(pc, kind, result.target, bool(result.taken),
                              kernel_mode=self.kernel_mode)

    def _backend_mispredict(self, pc: int, predicted_kind,
                            actual_kind: BranchKind,
                            wrong_target: int) -> None:
        """Execute-detected misprediction: the classic Spectre window."""
        self._counts[_IDX_RESTEER_BACKEND] += 1
        self._counts[_IDX_BRANCH_MISPREDICT] += 1
        transient = _TransientState(self, self.state.copy())
        executed = self._transient_run(wrong_target,
                                       self.uarch.backend_window_uops,
                                       transient, allow_nested=True)
        self.cycles += 18 + executed  # resteer + pipeline refill
        self._record(pc, predicted_kind, actual_kind, wrong_target,
                     Reach.EXECUTE, frontend=False)

    # ------------------------------------------------------------------
    # transient machinery
    # ------------------------------------------------------------------

    def _prefetch_target(self, target: int, *,
                         count_event: bool = True) -> Reach:
        """I-prefetch of an address: the line is cached but nothing
        enters the pipeline (no decode, no µops)."""
        try:
            pa = self._translate(canonical(target), exec_=True,
                                 user_mode=not self.kernel_mode)
        except PageFault:
            return Reach.NONE
        self.mem.hier.prefetch_instr(pa & ~63)
        if count_event:
            self._counts[_IDX_PHANTOM_FETCH] += 1
        return Reach.FETCH

    def _transient_target(self, target: int, exec_uops: int,
                          state: _TransientState | None,
                          nested: bool = False) -> Reach:
        """Fetch/decode/execute a speculative target; returns the reach.

        This is the phantom pipeline walk: instruction fetch through the
        MMU (exec permission enforced, faults squashed), decode into the
        µop cache, then at most *exec_uops* µops of transient execution.
        """
        target = canonical(target)
        user = not self.kernel_mode
        # --- IF ---------------------------------------------------------
        block = target & ~(self.uarch.fetch_block - 1)
        try:
            pa = self._translate(target, exec_=True, user_mode=user)
        except PageFault:
            return Reach.NONE
        line = pa & ~63
        self.mem.hier.prefetch_instr(line)
        end_pa = pa + (block + self.uarch.fetch_block - target)
        if (end_pa - 1) & ~63 != line:
            self.mem.hier.prefetch_instr((end_pa - 1) & ~63)
        self._counts[_IDX_PHANTOM_FETCH] += 1
        reach = Reach.FETCH
        # --- ID ---------------------------------------------------------
        raw = self.mem.phys.read(pa, min(self.uarch.fetch_block,
                                         PAGE_SIZE - (pa & (PAGE_SIZE - 1))))
        decoded: list[tuple[int, Instruction]] = []
        pos = 0
        while pos < len(raw):
            try:
                instr = decode(raw, pos)
            except DecodeError:
                break
            decoded.append((target + pos, instr))
            pos += instr.length
        if decoded:
            self.uopcache.fill(target)
            last_pc = decoded[-1][0]
            if (last_pc >> 6) != (target >> 6):
                self.uopcache.fill(last_pc)
            self._counts[_IDX_PHANTOM_DECODE] += 1
            reach = Reach.DECODE
        # --- EX ---------------------------------------------------------
        if exec_uops > 0 and decoded:
            transient = state or _TransientState(self, self.state.copy())
            executed = self._transient_run(target, exec_uops, transient,
                                           allow_nested=False)
            if executed > 0:
                self._counts[_IDX_PHANTOM_EXEC_UOPS] += executed
                reach = Reach.EXECUTE
        if nested:
            self._counts[_IDX_RESTEER_FRONTEND] += 1
        return reach

    def _transient_entry(self, pc: int, pa: int) -> tuple | None:
        """Decode (and memoize) the transient instruction at *pc*.

        Caches ``(instr, executor thunk, µop count, ends_window, length,
        branch kind, BTB key footprint, entry privilege, physical
        address)``, or ``None`` when the bytes do not decode — the
        lookup must reproduce the naive path's break-on-DecodeError
        without re-reading physical memory every µop.  The key
        footprint lets ``_transient_run`` answer the nested prediction
        query with one set intersection (see ``_fuse_superblock`` for
        the soundness argument).  The entry privilege tags both the
        footprint (Intel mixes privilege into the BTB tag) and the
        memoized translation (permission checks differ by mode); a
        privilege mismatch falls back to live calls.  Caching the
        physical address is sound because any mapping or permission
        change bumps the page-table generation, which clears this cache
        wholesale.  Entries are also dropped by ``invalidate_code``.
        """
        window = min(_MAX_INSTR_BYTES, PAGE_SIZE - (pa & (PAGE_SIZE - 1)))
        raw = self.mem.phys.read(pa, window)
        try:
            instr = decode(raw)
        except DecodeError:
            entry = None
        else:
            ends_window = instr.is_fence or instr.mnemonic in _TRAP_MNEMONICS
            kernel_mode = self.kernel_mode
            keys = self.bpu.btb.block_keys(pc, instr.length,
                                           kernel_mode=kernel_mode)
            entry = (instr, compile_executor(instr, pc), uop_count(instr),
                     ends_window, instr.length, instr.branch_kind,
                     keys, kernel_mode, pa)
        self._transient_cache[pc] = entry
        self._register_code_pc(pc)
        return entry

    def _transient_run(self, pc: int, uop_budget: int,
                       transient: _TransientState,
                       allow_nested: bool) -> int:
        """Transiently execute from *pc* until the µop budget runs out.

        Loads pull real data through the D-cache (filling it — the
        leak); stores stay in a private store buffer; faults, fences,
        traps and undecodable bytes end the window.  Returns µops
        executed.
        """
        kernel_mode = self.kernel_mode
        user = not kernel_mode
        executed = 0
        pc = canonical(pc)
        translate = self._translate
        t_load = transient.load
        t_store = transient.store
        rdtsc = self._rdtsc
        arch = transient.arch
        fast = self._fastpath
        # Intra-window memoization (fast path only): consecutive µops
        # share I-cache lines and µop-cache windows, and re-prefetching
        # a line known present / re-filling the MRU window are state
        # no-ops — *unless* something invalidated in between.  The L2
        # tick detects back-invalidation (every L2 access moves it; an
        # L1 hit never touches L2), and nested episodes reset both
        # memos below.
        hier = self.mem.hier
        prefetch = hier.prefetch_instr
        l2 = hier.l2
        uop_fill = self.uopcache.fill
        live = self.bpu.btb.live_keys
        last_line = -1
        last_l2_tick = -1
        last_window = -1
        keys = None
        keys_kernel = False
        scan_memo: dict[int, list] = {}
        if fast:
            generation = self.mem.aspace.generation
            if self._transient_gen != generation:
                self._transient_cache.clear()
                self._tb_user.clear()
                self._tb_kernel.clear()
                self._tb_index.clear()
                self._transient_gen = generation
            cache = self._transient_cache
            tbc = self._tb_kernel if kernel_mode else self._tb_user
        fuse = fast and self._superblocks
        while uop_budget > 0:
            if fast:
                if fuse:
                    block = tbc.get(pc, _UNCOMPILED)
                    if block is _UNCOMPILED:
                        block = self._compile_transient_block(
                            pc, tbc, kernel_mode)
                else:
                    block = None
                if block is not None and block is not _UNCOMPILED:
                    total, end_pc, block_fn = block
                    if total <= uop_budget:
                        done = block_fn(arch, t_load, t_store)
                        if done >= 0:
                            executed += done
                            uop_budget -= done
                            if done != total:
                                break      # faulted mid-block
                            pc = end_pc
                            # The block prefetched/filled on its own
                            # memo state; resync ours conservatively.
                            last_line = -1
                            last_window = -1
                            continue
                entry = cache.get(pc, _UNCOMPILED)
                if entry is _UNCOMPILED:
                    try:
                        pa = translate(pc, exec_=True, user_mode=user)
                    except PageFault:
                        break
                    entry = self._transient_entry(pc, pa)
                if entry is None:
                    break
                (instr, exec_thunk, n, ends_window, length, kind,
                 keys, keys_kernel, entry_pa) = entry
                if keys_kernel == kernel_mode:
                    pa = entry_pa
                else:
                    try:
                        pa = translate(pc, exec_=True, user_mode=user)
                    except PageFault:
                        break
                line = pa & ~63
                if line != last_line or l2._tick != last_l2_tick:
                    prefetch(line)
                    last_line = line
                    last_l2_tick = l2._tick
                window = pc >> 6
                if window != last_window:
                    uop_fill(pc)
                    last_window = window
                if ends_window:
                    break
                if n > uop_budget:
                    break
            else:
                try:
                    pa = translate(pc, exec_=True, user_mode=user)
                except PageFault:
                    break
                window = min(_MAX_INSTR_BYTES,
                             PAGE_SIZE - (pa & (PAGE_SIZE - 1)))
                raw = self.mem.phys.read(pa, window)
                try:
                    instr = decode(raw)
                except DecodeError:
                    break
                self.mem.hier.prefetch_instr(pa & ~63)
                self.uopcache.fill(pc)
                if instr.is_fence or instr.mnemonic in _TRAP_MNEMONICS:
                    break
                n = uop_count(instr)
                if n > uop_budget:
                    break
                length = instr.length
                kind = instr.branch_kind

            if allow_nested:
                if keys is not None and keys_kernel == kernel_mode \
                        and keys.isdisjoint(live):
                    # Pure pre-probe: no live BTB key matches any byte
                    # of this instruction, so the scan below would
                    # return None with zero side effects — skip it.
                    nested_pred = None
                elif fast:
                    # The BTB is static for the whole window (branches
                    # only train at retirement), so the pure per-byte
                    # scan is memoized per pc; prediction resolution
                    # and its metrics stay live on every visit.
                    found = scan_memo.get(pc)
                    if found is None:
                        found = scan_memo[pc] = self.bpu.btb.scan_block(
                            pc, length, kernel_mode=kernel_mode)
                    nested_pred = self.bpu.predict_scanned(
                        found, kernel_mode)
                else:
                    nested_pred = self.bpu.predict_in_block(
                        pc, length, kernel_mode=kernel_mode)
                if nested_pred is not None and \
                        nested_pred.kind is not kind:
                    # Phantom nested inside a Spectre window (§7.4):
                    # the decoder will resteer, but the phantom target
                    # advances with the *transient* register state.
                    reach = self._transient_target(
                        nested_pred.target, self.uarch.phantom_exec_uops,
                        transient, nested=True)
                    self._record(pc, nested_pred.kind, kind,
                                 nested_pred.target, reach, frontend=True,
                                 cross_privilege=nested_pred.cross_privilege,
                                 nested=True)
                    # The nested walk touched I-side caches: drop the
                    # intra-window memos.
                    last_line = -1
                    last_window = -1

            try:
                if fast:
                    result = exec_thunk(arch, t_load, t_store, rdtsc)
                else:
                    result = execute(instr, pc, arch, t_load, t_store,
                                     rdtsc=rdtsc)
            except PageFault:
                break
            executed += n
            uop_budget -= n
            if result.trap is not None:
                break
            pc = canonical(result.next_pc)
        return executed

    def _transient_load(self, addr: int, size: int,
                        transient: _TransientState, user: bool) -> int:
        stores = transient.stores
        if stores:
            # Store-to-load forwarding: the youngest buffered store that
            # fully contains the load forwards its bytes (hardware
            # forwards from the store buffer; the old exact-(addr, size)
            # match let contained reloads read stale memory).  Loads
            # only *partially* overlapping a store read memory —
            # documented in tests/pipeline/test_transient_forwarding.py.
            end = addr + size
            for start, (s_size, s_value) in reversed(stores.items()):
                if start <= addr and end <= start + s_size:
                    return (s_value >> ((addr - start) << 3)) \
                        & ((1 << (size << 3)) - 1)
        pa = self._translate(addr, user_mode=user)
        self.mem.hier.access_data(pa & ~63)
        self._counts[_IDX_TRANSIENT_LOAD] += 1
        return self.mem.phys.read_int(pa, size)

    # ------------------------------------------------------------------
    # traps and diagnostics
    # ------------------------------------------------------------------

    def _handle_trap(self, trap: str, instr: Instruction, result) -> None:
        if trap == "hlt":
            raise HaltRequested("hlt executed")
        if self.trap_handler is None:
            raise ReproError(f"unhandled trap {trap!r} at {self.pc:#x}")
        self.trap_handler(self, trap, instr, result)

    def _record(self, source_pc: int, predicted_kind, actual_kind,
                target: int, reach: Reach, *, frontend: bool,
                cross_privilege: bool = False, nested: bool = False) -> None:
        if _REG.enabled:
            (self._m_phantom if frontend else self._m_spectre).value += 1
        if _TRACE.enabled:
            _TRACE.emit(
                "episode", self.cycles, source_pc=source_pc,
                predicted_kind=(predicted_kind.value
                                if predicted_kind else None),
                actual_kind=actual_kind.value, target=target,
                reach=reach.name,
                flavour="phantom" if frontend else "spectre",
                cross_privilege=cross_privilege, nested=nested)
            _TRACE.emit("resteer", self.cycles,
                        source="frontend" if frontend else "backend",
                        pc=source_pc)
        if self.record_episodes:
            self.episodes.append(EpisodeRecord(
                source_pc=source_pc, predicted_kind=predicted_kind,
                actual_kind=actual_kind, target=target, reach=reach,
                frontend_resteer=frontend, cross_privilege=cross_privilege,
                nested=nested, cycle=self.cycles))
