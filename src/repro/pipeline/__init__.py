"""Pipeline: microarchitecture configs, PMCs, and the simulated CPU."""

from .config import (ALL_MICROARCHES, AMD_MICROARCHES, INTEL_11TH,
                     INTEL_12TH, INTEL_13TH, INTEL_9TH, INTEL_MICROARCHES,
                     Microarch, ZEN1, ZEN2, ZEN3, ZEN4, by_name)
from .cpu import CPU, EpisodeRecord, MSRState, Reach
from .pmc import EVENTS, PMC
from .sched import EventScheduler

__all__ = [
    "ALL_MICROARCHES",
    "AMD_MICROARCHES",
    "CPU",
    "EVENTS",
    "EpisodeRecord",
    "EventScheduler",
    "INTEL_11TH",
    "INTEL_12TH",
    "INTEL_13TH",
    "INTEL_9TH",
    "INTEL_MICROARCHES",
    "MSRState",
    "Microarch",
    "PMC",
    "Reach",
    "ZEN1",
    "ZEN2",
    "ZEN3",
    "ZEN4",
    "by_name",
]
