#!/usr/bin/env python3
"""Kernel-to-user covert channel over phantom speculation (§6.4).

Transmits a short message from kernel mode to the unprivileged attacker
by hijacking a direct branch inside a kernel module: the injected
jmp*-prediction target is a mapped (bit 1) or unmapped (bit 0) kernel
address, and the phantom *fetch* moves the bit into a chosen I-cache
set the attacker watches with Prime+Probe.

Run:  python examples/covert_channel.py
"""

import random

from repro.core import execute_covert_channel, fetch_covert_channel
from repro.api import Machine
from repro.pipeline import ZEN2, ZEN4


def main() -> None:
    print("fetch channel (works on every Zen, survives AutoIBRS):")
    machine = Machine(ZEN4, kaslr_seed=7, sibling_load=True)
    result = fetch_covert_channel(machine, n_bits=1024)
    print(f"  {machine.uarch.model}: {result.bits} bits, "
          f"accuracy {result.accuracy * 100:.2f}%, "
          f"{result.bits_per_second:,.0f} bits/s (simulated time)\n")

    print("execute channel (Zen 1/2 phantom window):")
    machine = Machine(ZEN2, kaslr_seed=7)
    result = execute_covert_channel(machine, n_bits=1024)
    print(f"  {machine.uarch.model}: {result.bits} bits, "
          f"accuracy {result.accuracy * 100:.2f}%, "
          f"{result.bits_per_second:,.0f} bits/s (simulated time)")


if __name__ == "__main__":
    main()
