#!/usr/bin/env python3
"""What do the deployed mitigations actually stop? (§6.3, §8)

Repeats the headline phantom experiment (train jmp*, victim non-branch)
under each mitigation configuration and reports which pipeline stages
the mispredicted target still reaches — reproducing observations O4
(SuppressBPOnNonBr leaves IF and ID intact) and O5 (AutoIBRS does not
prevent cross-privilege IF), plus IBPB as the effective-but-expensive
fix.

Run:  python examples/mitigation_study.py
"""

from repro.core import TrainKind, TypeConfusionExperiment, VictimKind
from repro.core.matrix import measure_cell
from repro.kernel import MitigationConfig
from repro.pipeline import ZEN2, ZEN4
from repro.workloads import mitigation_overhead


def reach_under(uarch, mitigations) -> str:
    result = measure_cell(uarch, TrainKind.INDIRECT, VictimKind.NON_BRANCH,
                          mitigations=mitigations)
    stages = []
    if result.fetch:
        stages.append("IF")
    if result.decode:
        stages.append("ID")
    if result.execute:
        stages.append("EX")
    return "+".join(stages) if stages else "(nothing)"


def main() -> None:
    print("phantom reach: training jmp*, victim non-branch\n")

    print(f"Zen 2, no mitigations:          "
          f"{reach_under(ZEN2, MitigationConfig())}")
    print(f"Zen 2, SuppressBPOnNonBr:       "
          f"{reach_under(ZEN2, MitigationConfig(suppress_bp_on_non_br=True))}"
          f"   <- O4: fetch+decode survive")
    print(f"Zen 4, no mitigations:          "
          f"{reach_under(ZEN4, MitigationConfig())}")
    print(f"Zen 4, AutoIBRS:                "
          f"{reach_under(ZEN4, MitigationConfig(auto_ibrs=True))}"
          f"   <- O5: cross-privilege IF survives")

    overhead = mitigation_overhead(ZEN2, runs=2)
    print(f"\nSuppressBPOnNonBr overhead (UnixBench-style suite): "
          f"{overhead * 100:.2f}% (paper: 0.69% single-core)")


if __name__ == "__main__":
    main()
