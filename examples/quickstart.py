#!/usr/bin/env python3
"""Quickstart: trigger and observe one Phantom speculation.

Trains the BTB with an indirect branch at user address A, then executes
*nops* at a BTB-aliased address B.  The frontend predicts a branch at
the nop, fetches and decodes the stale target — and on Zen 2 even
executes its load — before the decoder notices there is no branch at
all and resteers.  Everything is observed through timing and
performance counters, never via simulator internals.

Run:  python examples/quickstart.py
"""

from repro.core import TrainKind, TypeConfusionExperiment, VictimKind
from repro.api import Machine
from repro.pipeline import ZEN2, ZEN3
from repro.api import enable_metrics, one_line_summary


def show(uarch) -> None:
    print(f"--- {uarch.name} ({uarch.model}) ---")
    results = {}
    machines = []
    for channel in ("fetch", "decode", "execute"):
        machine = Machine(uarch, syscall_noise_evictions=0)
        machines.append(machine)
        experiment = TypeConfusionExperiment(
            machine, TrainKind.INDIRECT, VictimKind.NON_BRANCH)
        results[channel] = getattr(experiment, f"measure_{channel}")()
    print(f"  training: jmp*   victim: nop sled (no branch at all!)")
    print(f"  transient fetch   (I-cache timing):        "
          f"{'observed' if results['fetch'] else 'not observed'}")
    print(f"  transient decode  (µop-cache counters):    "
          f"{'observed' if results['decode'] else 'not observed'}")
    print(f"  transient execute (D-cache timing):        "
          f"{'observed' if results['execute'] else 'not observed'}")
    print(f"  {one_line_summary(*machines)}")
    print()


def main() -> None:
    print("Phantom quickstart: speculation on an instruction that is "
          "not a branch\n")
    enable_metrics()
    show(ZEN2)   # frontend loses the race: fetch + decode + execute
    show(ZEN3)   # decoder wins: fetch + decode only
    print("Zen 2's phantom window is long enough to execute a memory "
          "load\n(observation O3) - the capability behind the physmap "
          "and MDS exploits.")


if __name__ == "__main__":
    main()
