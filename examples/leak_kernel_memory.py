#!/usr/bin/env python3
"""The full §7 attack chain: leak arbitrary kernel memory on Zen 2.

Stage 1  break kernel-image KASLR (P1, 488 slots)
Stage 2  break physmap KASLR      (P2, 25 600 slots)
Stage 3  find the reload buffer's physical address (Flush+Reload oracle)
Stage 4  leak kernel secrets through an MDS gadget (P3 nested in a
         Spectre-v1 window)

The attacker only ever executes unprivileged code, issues syscalls and
measures cache timing.  The kernel's secret is never architecturally
readable from user mode — stage 4 verifies the leak against the ground
truth the simulator knows.

Run:  python examples/leak_kernel_memory.py
"""

from repro.core import (break_kernel_image_kaslr, break_physmap_kaslr,
                        find_physical_address, leak_kernel_memory)
from repro.api import Machine
from repro.pipeline import ZEN2
from repro.api import enable_metrics, one_line_summary

RELOAD_BUFFER_VA = 0x0000_0000_7A00_0000
LEAK_BYTES = 128


def main() -> None:
    enable_metrics(uarch=ZEN2.name)
    machine = Machine(ZEN2, kaslr_seed=99, phys_mem=1 << 30)
    print(f"victim: {machine.uarch.model}, 1 GiB RAM, KASLR on\n")

    print("[1/4] breaking kernel image KASLR with P1 ...")
    image = break_kernel_image_kaslr(machine)
    status = "ok" if image.correct(machine.kaslr) else "WRONG"
    print(f"      image base  = {image.guessed_base:#x} ({status})")

    print("[2/4] breaking physmap KASLR with P2 ...")
    physmap = break_physmap_kaslr(machine, image.guessed_base)
    status = "ok" if physmap.correct(machine.kaslr) else "WRONG"
    print(f"      physmap     = {physmap.guessed_base:#x} ({status}) "
          f"after {physmap.candidates_scanned} candidates")

    print("[3/4] locating the reload buffer in physical memory ...")
    machine.map_user_huge(RELOAD_BUFFER_VA)
    pa = find_physical_address(machine, image.guessed_base,
                               physmap.guessed_base, RELOAD_BUFFER_VA)
    status = "ok" if pa.correct(machine, RELOAD_BUFFER_VA) else "WRONG"
    print(f"      reload PA   = {pa.guessed_pa:#x} ({status})")

    print(f"[4/4] leaking {LEAK_BYTES} bytes of kernel memory via the "
          f"MDS gadget + P3 ...")
    leak = leak_kernel_memory(machine, image.guessed_base,
                              physmap.guessed_base, n_bytes=LEAK_BYTES)
    print(f"      accuracy    = {leak.accuracy * 100:.1f}%  "
          f"({leak.no_signal_bytes} no-signal bytes)")
    print(f"      leaked[0:16]   {leak.leaked[:16].hex()}")
    print(f"      expected[0:16] {leak.expected[:16].hex()}")
    if leak.leaked == leak.expected:
        print("\nkernel memory leaked byte-for-byte. Mitigations "
              "bypassed: phantom speculation is decoder-detected, not "
              "execute-detected.")
    print(f"\n{one_line_summary(machine)}")


if __name__ == "__main__":
    main()
