#!/usr/bin/env python3
"""Reverse engineer the Zen 3 cross-privilege BTB functions (§6.2).

First shows that brute-forcing small bit-flip patterns fails (bit 47
participates in every function), then runs the random-collision
sampling + GF(2) analysis that replaces the paper's SMT solver and
prints the recovered XOR functions — Figure 7.

The collision oracle is the simulated BTB itself: train a branch at
address *a*, look up at address *b*, and see whether the prediction is
served.

Run:  python examples/reverse_engineer_btb.py
"""

import random

from repro.frontend import BTB, ZEN3_ALIAS_PATTERNS
from repro.pipeline import ZEN3
from repro.isa import BranchKind
from repro.revtools import (brute_force_patterns, gf2, recover_functions,
                            solve_alias_pattern)

KERNEL_ADDR = 0xFFFF_FFFF_8123_4AC0 & ((1 << 48) - 1)


def btb_oracle(a: int, b: int) -> bool:
    """Does training at *a* serve a prediction at *b*?"""
    btb = BTB(ZEN3.btb)
    btb.train(a, BranchKind.INDIRECT, 0x4000, kernel_mode=False)
    return btb.lookup(b, kernel_mode=False) is not None


def main() -> None:
    print("step 1: brute force — flip bit 47 plus up to 3 more bits")
    result = brute_force_patterns(btb_oracle, KERNEL_ADDR, max_bits=3)
    print(f"  tested {result.tested} patterns, found {len(result.patterns)}"
          f" collisions (the paper's negative result)\n")

    print("step 2: random collision sampling + GF(2) solving "
          "(Z3 replacement)")
    rng = random.Random(1337)
    recovered = recover_functions(
        btb_oracle, [KERNEL_ADDR, KERNEL_ADDR ^ 0x40_0000],
        samples_per_addr=200_000, rng=rng)
    total = sum(s.samples for s in recovered.surveys)
    hits = sum(len(s.colliding) for s in recovered.surveys)
    print(f"  sampled {total} random user addresses, {hits} collided")
    print(f"  recovered {len(recovered.masks)} functions "
          f"(coefficient bound n=4):")
    for line in recovered.formatted():
        print(f"    {line}")

    from repro.frontend import ZEN3_TAG_FUNCTIONS
    in_span = sum(gf2.in_span(f, recovered.masks)
                  for f in ZEN3_TAG_FUNCTIONS)
    print(f"  all 12 published Figure 7 functions in recovered span: "
          f"{in_span}/12 (minimal bases are not unique; the span is)")

    print("\nstep 3: derive a user/kernel alias pattern and verify the "
          "published masks")
    alias = solve_alias_pattern(recovered.masks)
    print(f"  solved alias pattern: K ^ {alias:#018x}")
    print(f"  oracle(K, K ^ pattern) = "
          f"{btb_oracle(KERNEL_ADDR, KERNEL_ADDR ^ alias)}")
    for pattern in ZEN3_ALIAS_PATTERNS:
        low48 = pattern & ((1 << 48) - 1)
        ok = btb_oracle(KERNEL_ADDR, KERNEL_ADDR ^ low48)
        print(f"  published pattern {pattern:#018x}: collides = {ok}")


if __name__ == "__main__":
    main()
