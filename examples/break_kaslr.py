#!/usr/bin/env python3
"""Derandomize kernel-image KASLR with P1 (paper §7.1).

Boots a Zen 3 machine with a random KASLR seed and recovers the kernel
image base out of 488 possible slots using only:

* cross-privilege BTB aliasing (the Figure 7 functions),
* phantom speculation at ``getpid()``'s ``__task_pid_nr_ns`` prologue,
* Prime+Probe on the instruction cache with §7.3 scoring.

Run:  python examples/break_kaslr.py [seed]
"""

import sys

from repro.core import break_kernel_image_kaslr
from repro.api import Machine
from repro.pipeline import ZEN3


def main() -> None:
    seed = int(sys.argv[1]) if len(sys.argv) > 1 else 2024
    machine = Machine(ZEN3, kaslr_seed=seed)
    print(f"booted {machine.uarch.model}, KASLR seed {seed}")
    print(f"scanning {488} candidate slots via getpid() phantoms ...")

    result = break_kernel_image_kaslr(machine)

    top = sorted(result.scores, key=lambda g: -g.score)[:3]
    print("\ntop scoring candidates:")
    for guess in top:
        marker = " <= actual" if guess.guess == machine.kaslr.image_base \
            else ""
        print(f"  {guess.guess:#x}  score {guess.score}{marker}")

    print(f"\nguessed image base: {result.guessed_base:#x}")
    print(f"actual image base:  {machine.kaslr.image_base:#x}")
    print(f"derandomization {'SUCCEEDED' if result.correct(machine.kaslr) else 'FAILED'}"
          f" in {result.seconds * 1000:.2f} simulated ms")


if __name__ == "__main__":
    main()
