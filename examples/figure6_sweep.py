#!/usr/bin/env python3
"""Reproduce Figure 6 as an ASCII plot: detecting speculative decode.

Train a non-branch victim with jmp* and sweep the page offset of the
target C.  The µop-cache set primed by a jmp-series at offset 0xac0
only loses ways when C shares its set — the spike of Figure 6.

Run:  python examples/figure6_sweep.py
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent
                       / "benchmarks"))
from test_figure6_opcache import SERIES_OFFSET, SWEEP, measure_misses  # noqa: E402

from repro.pipeline import ZEN2, ZEN4  # noqa: E402


def main() -> None:
    print("Figure 6 — µop-cache misses vs page offset of C "
          "(jmp-series at 0xac0)\n")
    for uarch in (ZEN2, ZEN4):
        series = [measure_misses(uarch, off) for off in SWEEP]
        peak = max(series) or 1
        print(f"{uarch.name}:")
        for off, misses in zip(SWEEP, series):
            bar = "#" * round(20 * misses / peak)
            marker = "  <- matches the series set" \
                if off == SERIES_OFFSET else ""
            print(f"  {off:#5x} |{bar:<20s}| {misses}{marker}")
        print()


if __name__ == "__main__":
    main()
