#!/usr/bin/env python3
"""Hunt for Phantom-exploitable gadgets in a kernel-like corpus (§9.3).

Generates a synthetic corpus of kernel functions, runs the taint-based
gadget scanner over every bounds-checked path, and shows how counting
single-load (MDS-style) gadgets — which Phantom's P3 weaponizes —
multiplies the exploitable population, then demonstrates one finding
end to end with the tracer.

Run:  python examples/gadget_hunt.py
"""

from repro.analysis import (GadgetKind, Tracer, generate_corpus,
                            scan_corpus, scan_function)
from repro.api import Machine
from repro.kernel import SYS_MDS
from repro.pipeline import ZEN2


def census() -> None:
    corpus = generate_corpus(total=400, seed=42)
    summary = scan_corpus(corpus.image, corpus.entries)
    print(f"scanned {len(corpus.functions)} functions:")
    print(f"  conventional Spectre gadgets (double load): "
          f"{summary.spectre_v1}")
    print(f"  MDS-style single-load gadgets:              "
          f"{summary.mds_single_load}")
    print(f"  exploitable with Phantom P3:                "
          f"{summary.phantom_exploitable}")
    print(f"  amplification: {summary.amplification:.2f}x "
          f"(paper: 722/183 = 3.95x)\n")


def demonstrate_one() -> None:
    """Scan the *actual* kernel module of the simulator and exploit the
    finding it reports."""
    machine = Machine(ZEN2, kaslr_seed=3)
    entry = machine.modules.sym("mds_read_data")
    reports = scan_function(machine.modules.image, entry)
    print(f"scanning the simulator's own MDS kernel module:")
    for report in reports:
        print(f"  {report.kind.value} at branch {report.branch_pc:#x}, "
              f"load {report.load_pc:#x}")
    assert any(r.kind is GadgetKind.MDS_SINGLE_LOAD for r in reports)

    print("\ntracing one out-of-bounds call into the gadget:")
    with Tracer(machine) as trace:
        machine.syscall(SYS_MDS, 0x900, 0)
    lines = [line for line in trace.render().splitlines()
             if "spectre" in line or "phantom" in line]
    for line in lines[:4]:
        print(f"  {line.strip()}")


if __name__ == "__main__":
    census()
    demonstrate_one()
