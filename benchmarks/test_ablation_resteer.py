"""Ablation A2: phantom reach as a latency race.

DESIGN.md models the IF/ID/EX split as a race between the decoder's
resteer and the µop queue's issue: ``phantom_exec_uops =
max(0, frontend_resteer_latency - issue_latency)``.  Sweeping the
resteer latency across the issue latency must flip the observed reach
from decode-only to execute exactly at the boundary — i.e. Zen 1/2 vs
Zen 3/4 is one parameter, not two mechanisms.
"""

from dataclasses import replace

from repro.core import TrainKind, VictimKind, measure_cell
from repro.pipeline import Reach, ZEN2

from _harness import emit, run_once

SWEEP = range(2, 11)


def test_ablation_resteer_latency_race(benchmark):
    def experiment():
        results = {}
        for latency in SWEEP:
            uarch = replace(ZEN2, frontend_resteer_latency=latency)
            cell = measure_cell(uarch, TrainKind.INDIRECT,
                                VictimKind.NON_BRANCH)
            results[latency] = cell.reach
        return results

    results = run_once(benchmark, experiment)

    issue = ZEN2.issue_latency
    lines = [f"Ablation — reach vs frontend resteer latency "
             f"(issue latency = {issue})",
             "resteer latency : " + "  ".join(f"{l:2d}" for l in SWEEP),
             "observed reach  : " + "  ".join(f"{results[l].name[:2]}"
                                              for l in SWEEP)]
    emit("ablation_resteer", lines)

    for latency, reach in results.items():
        if latency <= issue:
            assert reach is Reach.DECODE, latency
        else:
            assert reach is Reach.EXECUTE, latency
