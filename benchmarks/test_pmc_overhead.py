"""Microbenchmark: PMC event-name check on the simulator's hottest path.

``PMC.add``/``read`` validate the event name on every simulated memory
access; the membership test runs against a frozenset (``_EVENT_SET``)
rather than scanning the ``EVENTS`` tuple.  This benchmark measures the
per-call cost of both variants through the telemetry profiling hooks
and archives the delta in a run manifest, so ``repro stats`` can track
it across revisions.
"""

from repro.pipeline.pmc import EVENTS, PMC
from repro.telemetry import profile_block, time_callable

from _harness import emit, run_once, scale, telemetry_run

CALLS = scale(50_000, 500_000)
#: The worst-case tuple-scan event: last in EVENTS.
LAST_EVENT = EVENTS[-1]


def _tuple_add(pmc: PMC, event: str, n: int = 1) -> None:
    """The pre-frozenset implementation, kept for comparison."""
    if event not in EVENTS:
        raise KeyError(f"unknown PMC event {event!r}")
    pmc._counts[event] += n


def test_pmc_add_membership_check(benchmark):
    pmc = PMC()

    def measure():
        with telemetry_run("bench-pmc-overhead", calls=CALLS) as manifest:
            with profile_block("pmc_add_frozenset"):
                frozenset_s = time_callable(
                    lambda: pmc.add(LAST_EVENT), repeat=3, number=CALLS)
            with profile_block("pmc_add_tuple_scan"):
                tuple_s = time_callable(
                    lambda: _tuple_add(pmc, LAST_EVENT),
                    repeat=3, number=CALLS)
            speedup = tuple_s / frozenset_s if frozenset_s else 0.0
            manifest.finish(
                "success",
                frozenset_ns_per_call=frozenset_s / CALLS * 1e9,
                tuple_scan_ns_per_call=tuple_s / CALLS * 1e9,
                speedup=speedup)
        return frozenset_s, tuple_s, speedup, manifest

    frozenset_s, tuple_s, speedup, manifest = run_once(benchmark, measure)

    lines = [f"PMC.add membership check, {CALLS:,} calls "
             f"(worst-case event {LAST_EVENT!r})",
             f"{'variant':14s} {'ns/call':>10s}",
             f"{'frozenset':14s} {frozenset_s / CALLS * 1e9:10.1f}",
             f"{'tuple scan':14s} {tuple_s / CALLS * 1e9:10.1f}",
             f"speedup: {speedup:.2f}x"]
    emit("pmc_overhead", lines, manifest=manifest)

    # Counters must agree regardless of which check validated the name.
    assert pmc.read(LAST_EVENT) == 6 * CALLS
    # The frozenset variant must never lose to the tuple scan by more
    # than measurement noise (generous bound: CI machines are noisy).
    assert frozenset_s < tuple_s * 1.5
