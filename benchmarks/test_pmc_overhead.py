"""Microbenchmark: PMC counter bump on the simulator's hottest path.

``PMC.add``/``read`` run on every simulated memory access.  The
counters are interned: event names map to fixed integer indices into a
plain list (``EVENT_INDEX``), and the pipeline pre-resolves the indices
it uses so its hot loops bump list slots directly.  This benchmark
measures the per-call cost of the interned implementation against the
previous dict-of-names variant and archives the delta in a run
manifest, so ``repro stats`` can track it across revisions.
"""

from repro.pipeline.pmc import EVENTS, PMC
from repro.telemetry import profile_block, time_callable

from _harness import emit, run_once, scale, telemetry_run

CALLS = scale(50_000, 500_000)
#: The worst-case event under the old tuple-membership check: last in
#: EVENTS (for the interned dict probe the position is irrelevant).
LAST_EVENT = EVENTS[-1]
_EVENT_SET = frozenset(EVENTS)


class DictPMC:
    """The pre-interning implementation, kept for comparison."""

    def __init__(self) -> None:
        self._counts = {name: 0 for name in EVENTS}

    def add(self, event: str, n: int = 1) -> None:
        if event not in _EVENT_SET:
            raise KeyError(f"unknown PMC event {event!r}")
        self._counts[event] += n

    def read(self, event: str) -> int:
        return self._counts[event]


def test_pmc_add_interned_counters(benchmark):
    pmc = PMC()
    legacy = DictPMC()

    def measure():
        with telemetry_run("bench-pmc-overhead", calls=CALLS) as manifest:
            with profile_block("pmc_add_interned"):
                interned_s = time_callable(
                    lambda: pmc.add(LAST_EVENT), repeat=3, number=CALLS)
            with profile_block("pmc_add_dict"):
                dict_s = time_callable(
                    lambda: legacy.add(LAST_EVENT), repeat=3, number=CALLS)
            speedup = dict_s / interned_s if interned_s else 0.0
            manifest.finish(
                "success",
                interned_ns_per_call=interned_s / CALLS * 1e9,
                dict_ns_per_call=dict_s / CALLS * 1e9,
                speedup=speedup)
        return interned_s, dict_s, speedup, manifest

    interned_s, dict_s, speedup, manifest = run_once(benchmark, measure)

    lines = [f"PMC.add per-call cost, {CALLS:,} calls "
             f"(event {LAST_EVENT!r})",
             f"{'variant':14s} {'ns/call':>10s}",
             f"{'interned':14s} {interned_s / CALLS * 1e9:10.1f}",
             f"{'dict':14s} {dict_s / CALLS * 1e9:10.1f}",
             f"speedup: {speedup:.2f}x"]
    emit("pmc_overhead", lines, manifest=manifest)

    # Both implementations must count identically.
    assert pmc.read(LAST_EVENT) == legacy.read(LAST_EVENT) == 3 * CALLS
    # Interning must never lose to the dict variant by more than
    # measurement noise (generous bound: CI machines are noisy).
    assert interned_s < dict_s * 1.5
