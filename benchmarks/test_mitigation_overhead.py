"""Section 6.3: performance overhead of SuppressBPOnNonBr.

Reproduction target (shape): a sub-1 % geometric-mean overhead on the
UnixBench-style suite (paper: 0.69 % single-core, 0.42 % multi-core
on Zen 2), and exactly zero on Zen 1, which does not implement the MSR.
"""

from repro.kernel import MitigationConfig
from repro.pipeline import ZEN1, ZEN2
from repro.workloads import mitigation_overhead, run_suite

from _harness import emit, run_once, scale

RUNS = scale(2, 5)


def test_suppress_bp_on_non_br_overhead(benchmark):
    def experiment():
        single = mitigation_overhead(ZEN2, runs=RUNS)
        multi = mitigation_overhead(ZEN2, runs=RUNS, sibling_load=True)
        zen1_base = run_suite(ZEN1, runs=1)
        zen1_hard = run_suite(ZEN1, runs=1, mitigations=MitigationConfig(
            suppress_bp_on_non_br=True))
        return single, multi, zen1_base, zen1_hard

    single, multi, zen1_base, zen1_hard = run_once(benchmark, experiment)

    emit("mitigation_overhead", [
        "§6.3 — SuppressBPOnNonBr overhead (UnixBench-style suite, "
        f"geomean of {RUNS} runs)",
        f"Zen 2 single-core: {single * 100:5.2f}%   (paper: 0.69%)",
        f"Zen 2 multi-core:  {multi * 100:5.2f}%   (paper: 0.42%)",
        f"Zen 1 (MSR not implemented): "
        f"{(zen1_hard.geometric_mean() / zen1_base.geometric_mean() - 1) * 100:5.2f}%",
    ])

    assert 0.0 < single < 0.01          # sub-1 %, like the paper
    assert 0.0 < multi < 0.01
    assert zen1_hard.cycles == zen1_base.cycles   # Zen 1: bit is a no-op
