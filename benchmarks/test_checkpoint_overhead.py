"""Microbenchmark: what does journaling every job cost a campaign?

The checkpoint journal (``repro.resilience.checkpoint``) appends one
JSON line per finished job, flushed according to ``checkpoint_every``.
Durability is only worth having if it is effectively free next to the
simulated work, so this benchmark runs the same pure-compute campaign
bare, journaled-per-job (``every=1``, the CLI default) and batch-
flushed (``every=16``), and archives the per-job cost of each in a run
manifest for ``repro stats`` to track across revisions.
"""

from dataclasses import dataclass
from typing import ClassVar

from repro.resilience import load_checkpoint
from repro.runner import JobSpec, derive_seed, run_campaign

from _harness import emit, run_once, scale, telemetry_run

JOBS = scale(200, 2_000)


@dataclass(frozen=True)
class JournaledToy:
    """Minimal campaign: journal overhead dominates by construction."""

    name: ClassVar[str] = "checkpoint-bench"

    n: int = JOBS

    def campaign_config(self) -> dict:
        return {"n": self.n}

    def job_specs(self):
        return [JobSpec.make(self.name, (i,), derive_seed(9, (i,)),
                             index=i)
                for i in range(self.n)]

    def run_one(self, spec, ctx):
        return spec.param("index") * 3 + spec.seed % 11

    def reduce(self, results):
        return [r.value for r in results if r.ok]


def _timed_campaign(**kwargs) -> float:
    import time

    start = time.perf_counter()
    campaign = run_campaign(JournaledToy(), jobs=1, **kwargs)
    elapsed = time.perf_counter() - start
    assert not campaign.failures
    return elapsed


def test_checkpoint_journal_overhead(benchmark, tmp_path):
    def measure():
        with telemetry_run("bench-checkpoint-overhead",
                           jobs=JOBS) as manifest:
            bare_s = _timed_campaign()
            per_job_s = _timed_campaign(
                checkpoint=tmp_path / "every1.jsonl", checkpoint_every=1)
            batched_s = _timed_campaign(
                checkpoint=tmp_path / "every16.jsonl", checkpoint_every=16)
            resume_start_s = _timed_campaign(
                resume=tmp_path / "every1.jsonl")
            manifest.finish(
                "success",
                bare_us_per_job=bare_s / JOBS * 1e6,
                journaled_us_per_job=per_job_s / JOBS * 1e6,
                batched_us_per_job=batched_s / JOBS * 1e6,
                resume_us_per_job=resume_start_s / JOBS * 1e6)
        return bare_s, per_job_s, batched_s, resume_start_s, manifest

    bare_s, per_job_s, batched_s, resume_s, manifest = \
        run_once(benchmark, measure)

    lines = [f"checkpoint journal overhead, {JOBS:,} jobs",
             f"{'variant':22s} {'us/job':>8s}",
             f"{'no journal':22s} {bare_s / JOBS * 1e6:8.1f}",
             f"{'journal every job':22s} {per_job_s / JOBS * 1e6:8.1f}",
             f"{'journal every 16':22s} {batched_s / JOBS * 1e6:8.1f}",
             f"{'resume (all skipped)':22s} {resume_s / JOBS * 1e6:8.1f}"]
    emit("checkpoint_overhead", lines, manifest=manifest)

    # Both journals captured every job.
    assert len(load_checkpoint(tmp_path / "every1.jsonl")) == JOBS
    assert len(load_checkpoint(tmp_path / "every16.jsonl")) == JOBS
    # Durability must stay cheap: generous CI-noise bound against the
    # bare campaign (journaling is file appends, not simulation).
    assert per_job_s < bare_s * 5 + 0.5
