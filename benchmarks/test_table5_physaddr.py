"""Table 5: finding the physical address of a user huge page.

Reproduction target (shape): ~100 % accuracy on Zen 1/2; the time grows
with physical memory size (paper: 1 s at 8 GB vs 16 s at 64 GB — a
factor tracking the candidate count).  Per-attempt re-randomization is
modelled by allocating a random number of filler huge pages before the
target buffer, exactly as §7.4 describes.
"""

import random
from statistics import median

from repro.core import find_physical_address
from repro.kernel import Machine
from repro.pipeline import ZEN1, ZEN2

from _harness import emit, run_once, scale

RUNS = scale(3, 100)
PHYS_MEM = {ZEN1: scale(2 << 30, 8 << 30),
            ZEN2: scale(8 << 30, 64 << 30)}
BUFFER_VA = 0x0000_0000_7A00_0000


def test_table5_physical_address(benchmark):
    def experiment():
        rows = []
        rng = random.Random(3)
        for uarch in (ZEN1, ZEN2):
            outcomes = []
            for run in range(RUNS):
                machine = Machine(uarch, kaslr_seed=3000 + run,
                                  rng_seed=run,
                                  phys_mem=PHYS_MEM[uarch])
                # Re-randomize the buffer's physical address (paper:
                # "we allocate a random number of huge pages before
                # allocating A").  Spreading uniformly over RAM models
                # a fragmented allocator, giving Table 5's shape: more
                # memory -> later expected position -> longer search.
                total_huge = PHYS_MEM[uarch] >> 21
                machine.alloc_filler_huge_pages(
                    rng.randrange(total_huge // 2))
                machine.map_user_huge(BUFFER_VA)
                result = find_physical_address(
                    machine, machine.kaslr.image_base,
                    machine.kaslr.physmap_base, BUFFER_VA)
                outcomes.append((result.correct(machine, BUFFER_VA),
                                 result.seconds))
            rows.append((uarch, outcomes))
        return rows

    rows = run_once(benchmark, experiment)

    lines = [f"Table 5 — physical address of a huge page, {RUNS} runs",
             f"{'uarch':7s} {'model':20s} {'memory':>8s} {'accuracy':>9s} "
             f"{'median simulated time':>22s}"]
    for uarch, outcomes in rows:
        accuracy = sum(ok for ok, _ in outcomes) / len(outcomes)
        med = median(s for _, s in outcomes)
        lines.append(f"{uarch.name:7s} {uarch.model:20s} "
                     f"{PHYS_MEM[uarch] >> 30:6d}GB "
                     f"{accuracy * 100:8.1f}% {med * 1000:18.3f} ms")
    emit("table5", lines)

    for uarch, outcomes in rows:
        accuracy = sum(ok for ok, _ in outcomes) / len(outcomes)
        assert accuracy >= 0.9, uarch.name
    # More memory -> more candidates -> more time (paper: 1 s vs 16 s).
    med = {u.name: median(s for _, s in o) for u, o in rows}
    assert med["Zen 2"] > med["Zen 1"]
