"""Shared helpers for the reproduction benchmarks.

Each benchmark regenerates one table or figure of the paper and prints
it in the paper's layout (run pytest with ``-s`` to see the tables).
``REPRO_FULL=1`` switches to the paper's full experiment scale; the
default scale is reduced so the whole bench suite stays in CI budgets.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from pathlib import Path

RESULTS_DIR = Path(__file__).parent / "results"

FULL = os.environ.get("REPRO_FULL", "") not in ("", "0")


def scale(default, full):
    """Pick an experiment size: reduced by default, paper-scale FULL."""
    return full if FULL else default


def emit(name: str, lines: list[str], manifest=None) -> None:
    """Print a result table and persist it under benchmarks/results/.

    When a :class:`repro.telemetry.RunManifest` — or a plain manifest
    document (dict), e.g. a merged campaign manifest from
    :mod:`repro.runner` — is supplied, its JSON is archived next to the
    table as ``<name>.manifest.json`` (a stable name, so ``repro
    stats`` can diff successive runs).
    """
    import json

    text = "\n".join(lines)
    print(f"\n{text}\n")
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    if isinstance(manifest, dict):
        (RESULTS_DIR / f"{name}.manifest.json").write_text(
            json.dumps(manifest, indent=2) + "\n")
    elif manifest is not None:
        manifest.write(RESULTS_DIR, name=f"{name}.manifest.json")


@contextmanager
def telemetry_run(command: str, **config):
    """Metrics-enabled manifest for one benchmark experiment."""
    from repro.telemetry import REGISTRY, RunManifest

    REGISTRY.reset()
    REGISTRY.enable()
    try:
        yield RunManifest.begin(command, config)
    finally:
        REGISTRY.disable()


def finish_with_campaigns(manifest, status, campaigns, **outcome):
    """Seal a bench manifest and fold campaign manifests into it.

    The campaigns' jobs already carried their own metrics scopes (the
    last one is still sitting in the process registry), so the registry
    is reset before the final snapshot — the job metrics enter exactly
    once, through :meth:`RunManifest.absorb`.
    """
    from repro.telemetry import REGISTRY

    REGISTRY.reset()
    manifest.finish(status, **outcome)
    for campaign in campaigns:
        manifest.absorb(campaign.manifest)
    return manifest


def run_once(benchmark, fn):
    """Register *fn* with pytest-benchmark as a single-shot measurement."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
