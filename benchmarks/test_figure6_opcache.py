"""Figure 6: detecting speculative decode via the µop cache.

Train a non-branch victim with jmp* and sweep the page offset of the
target C across 0x000..0xf00.  A jmp-series priming one fixed µop-cache
set observes evictions only when C's offset selects the same set —
reproducing the single spike of Figure 6 (the paper places the series
at page offset 0xac0; we do the same) on Zen 2 and Zen 4.
"""

from repro.core import AttackerRuntime
from repro.isa import Assembler, Reg
from repro.kernel import Machine
from repro.params import PAGE_SIZE
from repro.pipeline import ZEN2, ZEN4

from _harness import emit, run_once

SERIES_OFFSET = 0xAC0
# Victim/trainer sit in a different µop-cache set (offset 0x648, set 25)
# so only the phantom decode of C can touch the series' set.
TRAIN_SRC = 0x0000_0000_0410_0648
TARGET_PAGE = 0x0000_0000_0480_0000
SERIES_BASE = 0x0000_0000_0500_0000
SWEEP = [off * 0x100 + (SERIES_OFFSET & 0xC0)
         for off in range(16)]  # 0x0c0, 0x1c0 ... matching line bits [6:12)


def measure_misses(uarch, c_offset: int) -> int:
    """One Figure 6 data point: µop-cache misses re-running the series
    after the victim, with C at page offset *c_offset*."""
    machine = Machine(uarch, syscall_noise_evictions=0)
    attacker = AttackerRuntime(machine)
    victim_src = (TRAIN_SRC ^ machine.uarch.btb.user_alias_mask())

    # Fixed series at page offset 0xac0 (7 jmps 4096 bytes apart).
    asm = Assembler(SERIES_BASE + SERIES_OFFSET)
    for i in range(7):
        asm.jmp(SERIES_BASE + (i + 1) * PAGE_SIZE + SERIES_OFFSET)
        asm.pad_to(SERIES_BASE + (i + 1) * PAGE_SIZE + SERIES_OFFSET)
    asm.hlt()
    segment, _ = asm.finish()
    attacker.write_code(segment.base, segment.data)

    target = TARGET_PAGE + c_offset
    attacker.write_code(target, b"\x90\xf4")          # nop ; hlt
    attacker.write_code(victim_src, b"\x90" * 4 + b"\xf4")

    attacker.train_indirect(TRAIN_SRC, target)
    machine.run_user(SERIES_BASE + SERIES_OFFSET)     # prime the set
    machine.run_user(victim_src)                      # phantom decode
    with machine.cpu.pmc.sample("op_cache_miss") as sample:
        machine.run_user(SERIES_BASE + SERIES_OFFSET)
    return sample["op_cache_miss"]


def test_figure6_speculative_decode_sweep(benchmark):
    def experiment():
        return {uarch: [measure_misses(uarch, off) for off in SWEEP]
                for uarch in (ZEN2, ZEN4)}

    series = run_once(benchmark, experiment)

    lines = ["Figure 6 — µop-cache misses vs page offset of C "
             "(series at 0xac0)",
             "offset    " + "".join(f"{off:>6x}" for off in SWEEP)]
    for uarch, misses in series.items():
        lines.append(f"{uarch.name:8s}  "
                     + "".join(f"{m:6d}" for m in misses))
    emit("figure6", lines)

    matching_index = SWEEP.index(SERIES_OFFSET)
    for uarch, misses in series.items():
        # The spike sits exactly at the matching offset...
        assert misses[matching_index] > 0, uarch.name
        # ...and nowhere else.
        for i, m in enumerate(misses):
            if i != matching_index:
                assert m == 0, (uarch.name, hex(SWEEP[i]))
