"""Figure 7: reverse engineering the Zen 3/4 cross-privilege BTB
functions from collision observations.

Reproduction targets:
* brute force with bit 47 plus a few extra flips finds nothing (§6.2's
  negative result);
* random sampling + GF(2) solving (our Z3 substitute) recovers a
  function space containing all 12 published functions, with every
  basis element at the paper's n=4 coefficient bound;
* both published alias masks (`0xffffbff800000000`,
  `0xffff8003ff800000`) collide on the simulated BTB.
"""

import random

from repro.frontend import (BTB, ZEN3_ALIAS_PATTERNS, ZEN3_BTB_FUNCTIONS,
                            ZEN3_TAG_FUNCTIONS)
from repro.isa import BranchKind
from repro.pipeline import ZEN3
from repro.revtools import (brute_force_patterns, gf2, recover_functions,
                            solve_alias_pattern)

from _harness import emit, run_once, scale

KERNEL_ADDR = 0xFFFF_FFFF_8123_4AC0 & ((1 << 48) - 1)
SAMPLES = scale(200_000, 400_000)


def btb_oracle(a: int, b: int) -> bool:
    btb = BTB(ZEN3.btb)
    btb.train(a, BranchKind.INDIRECT, 0x4000, kernel_mode=False)
    return btb.lookup(b, kernel_mode=False) is not None


def test_figure7_btb_function_recovery(benchmark):
    def experiment():
        brute = brute_force_patterns(btb_oracle, KERNEL_ADDR, max_bits=3)
        rng = random.Random(7)
        recovered = recover_functions(
            btb_oracle, [KERNEL_ADDR, KERNEL_ADDR ^ 0x40_0000],
            samples_per_addr=SAMPLES, rng=rng)
        return brute, recovered

    brute, recovered = run_once(benchmark, experiment)

    lines = ["Figure 7 — recovered cross-privilege BTB functions (Zen 3)",
             f"brute force: {brute.tested} patterns tested, "
             f"{len(brute.patterns)} collisions (expected 0)"]
    lines += [f"  {line}" for line in recovered.formatted()]
    alias = solve_alias_pattern(recovered.masks)
    lines.append(f"solved alias pattern: {alias:#018x}")
    for pattern in ZEN3_ALIAS_PATTERNS:
        ok = btb_oracle(KERNEL_ADDR, KERNEL_ADDR ^ (pattern & (1 << 48) - 1))
        lines.append(f"published mask {pattern:#018x} collides: {ok}")
    emit("figure7", lines)

    # Negative result: small flips around bit 47 never collide.
    assert brute.patterns == []
    # Full recovery: the function space equals the modelled BTB's.
    assert gf2.row_reduce(recovered.masks) \
        == gf2.row_reduce(ZEN3_BTB_FUNCTIONS)
    # Every published Figure 7 function is recovered (span membership).
    for fn in ZEN3_TAG_FUNCTIONS:
        assert gf2.in_span(fn, recovered.masks)
    # All functions at the paper's n=4 coefficient bound.
    assert all(gf2.popcount(m) <= 4 for m in recovered.masks)
    # The solved alias works and crosses the privilege boundary.
    assert alias >> 47 & 1
    assert btb_oracle(KERNEL_ADDR, KERNEL_ADDR ^ alias)
