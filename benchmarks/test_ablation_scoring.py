"""Ablation A1: the §7.3 noise-handling machinery.

DESIGN.md calls out two design choices in the KASLR exploit: bounded
multi-set differencing with median repetition, and signal amplification
via a second speculative branch on the syscall path.  This ablation
removes them one at a time and measures derandomization accuracy under
heavier syscall noise, showing each ingredient earns its keep.
"""

from repro.core import break_kernel_image_kaslr
from repro.kernel import Machine
from repro.pipeline import ZEN3

from _harness import emit, run_once, scale

RUNS = scale(3, 10)
#: Heavier-than-default syscall thrash to stress the scoring.
NOISE = 24


def accuracy(**kwargs) -> float:
    ok = 0
    for run in range(RUNS):
        machine = Machine(ZEN3, kaslr_seed=5000 + run, rng_seed=run,
                          syscall_noise_evictions=NOISE)
        result = break_kernel_image_kaslr(machine, **kwargs)
        ok += result.correct(machine.kaslr)
    return ok / RUNS


def test_ablation_scoring(benchmark):
    def experiment():
        return {
            "full (2 sets, 3 repeats, amplified)": accuracy(),
            "no amplification": accuracy(amplify=False),
            "single repeat": accuracy(repeats=1),
            "single set, single repeat": accuracy(sets=(44,), repeats=1),
        }

    results = run_once(benchmark, experiment)

    lines = [f"Ablation — §7.3 scoring under heavy syscall noise "
             f"({NOISE} evictions/syscall), {RUNS} runs each"]
    for name, acc in results.items():
        lines.append(f"  {name:36s} accuracy {acc * 100:6.1f}%")
    emit("ablation_scoring", lines)

    full = results["full (2 sets, 3 repeats, amplified)"]
    weakest = results["single set, single repeat"]
    assert full >= weakest
    assert full >= 2 / 3   # the full machinery stays reliable
