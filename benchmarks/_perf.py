"""Simulator-throughput harness: regenerate the committed IPS baseline.

Unlike the table/figure benchmarks in this directory, this harness
measures the *simulator itself* — simulated instructions per host
second for the naive interpreter versus the fast-path engine (see
``docs/performance.md``).  It drives :mod:`repro.bench` (the same
engine behind ``repro bench``) and rewrites the committed baseline::

    PYTHONPATH=src python benchmarks/_perf.py [--quick]

The result lands in ``benchmarks/results/BENCH_simulator.json``
(a ``phantom.bench/1`` document).  CI's bench-smoke job replays
``repro bench --quick`` against this file and fails when the fast/slow
speedup of any workload regresses by more than 30 % — regenerate and
commit the baseline when a deliberate change moves the ratio.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from _harness import RESULTS_DIR  # noqa: E402

from repro.bench import document, format_table, run_bench  # noqa: E402

BASELINE = RESULTS_DIR / "BENCH_simulator.json"


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="CI-sized workloads (do not commit a "
                             "baseline produced with this flag)")
    parser.add_argument("--out", default=str(BASELINE),
                        help=f"output path (default {BASELINE})")
    args = parser.parse_args(argv)

    results = run_bench(quick=args.quick)
    print(format_table(results))
    doc = document(results, quick=args.quick)
    RESULTS_DIR.mkdir(exist_ok=True)
    Path(args.out).write_text(json.dumps(doc, indent=2) + "\n")
    print(f"\nwrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
