"""Microbenchmark: what does the content-addressed store cost, and
what does a warm campaign save?

The campaign service's dedup claim is only interesting if (a) banking
results into the :class:`repro.service.ResultStore` costs little next
to running a job and (b) answering a campaign from the store is much
cheaper than simulating it.  This benchmark runs the same pure-compute
campaign bare, memoized-cold (every job simulated and stored),
memoized-warm (every job answered from the store) and store-lookup
only, and archives per-job costs in a run manifest for ``repro stats``
to track across revisions.
"""

import time
from dataclasses import dataclass
from typing import ClassVar

from repro.runner import JobSpec, derive_seed, run_campaign
from repro.service import ResultStore, run_campaign_memoized

from _harness import emit, run_once, scale, telemetry_run

JOBS = scale(200, 2_000)


@dataclass(frozen=True)
class MemoToy:
    """Minimal campaign: store overhead dominates by construction."""

    name: ClassVar[str] = "memo-bench"

    n: int = JOBS

    def campaign_config(self) -> dict:
        return {"n": self.n}

    def job_specs(self):
        return [JobSpec.make(self.name, (i,), derive_seed(11, (i,)),
                             index=i)
                for i in range(self.n)]

    def run_one(self, spec, ctx):
        return spec.param("index") * 5 + spec.seed % 13

    def reduce(self, results):
        return [r.value for r in results if r.ok]


def _timed(fn):
    start = time.perf_counter()
    out = fn()
    return time.perf_counter() - start, out


def test_memo_store_overhead(benchmark, tmp_path):
    experiment = MemoToy()

    def measure():
        store = ResultStore(tmp_path / "store")
        with telemetry_run("bench-memo-overhead", jobs=JOBS) as manifest:
            bare_s, campaign = _timed(
                lambda: run_campaign(experiment, jobs=1))
            cold_s, (_, cold_stats) = _timed(
                lambda: run_campaign_memoized(experiment, store, jobs=1))
            warm_s, (_, warm_stats) = _timed(
                lambda: run_campaign_memoized(experiment, store, jobs=1))
            lookup_s, found = _timed(
                lambda: store.lookup(experiment.job_specs()))
            manifest.finish(
                "success",
                bare_us_per_job=bare_s / JOBS * 1e6,
                cold_us_per_job=cold_s / JOBS * 1e6,
                warm_us_per_job=warm_s / JOBS * 1e6,
                lookup_us_per_job=lookup_s / JOBS * 1e6,
                warm_hit_rate=warm_stats.hit_rate)
            assert not campaign.failures
            assert cold_stats.stored == JOBS
            assert warm_stats.hits == JOBS
            assert len(found) == JOBS
        return bare_s, cold_s, warm_s, lookup_s, manifest

    bare_s, cold_s, warm_s, lookup_s, manifest = \
        run_once(benchmark, measure)

    lines = [f"content-addressed store overhead, {JOBS:,} jobs",
             f"{'variant':24s} {'us/job':>8s}",
             f"{'bare campaign':24s} {bare_s / JOBS * 1e6:8.1f}",
             f"{'memoized cold (store)':24s} {cold_s / JOBS * 1e6:8.1f}",
             f"{'memoized warm (hits)':24s} {warm_s / JOBS * 1e6:8.1f}",
             f"{'store lookup only':24s} {lookup_s / JOBS * 1e6:8.1f}"]
    emit("memo_overhead", lines, manifest=manifest)

    # Banking results must stay cheap (file appends, not simulation),
    # with a generous CI-noise bound.
    assert cold_s < bare_s * 6 + 0.5
    # A warm campaign must not be slower than the cold one by more
    # than noise — it does strictly less work.
    assert warm_s < cold_s * 2 + 0.5
