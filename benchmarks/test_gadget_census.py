"""Section 9.3: Phantom's effect on the exploitable-gadget population.

The paper, building on Kasper's Linux-kernel census, estimates that
counting single-load (MDS-style) gadgets — which P3 turns into full
disclosure gadgets — grows the Spectre-exploitable population about
4x, from 183 to 722.

We cannot scan Linux here; instead the corpus generator implants
gadget classes at Kasper's relative frequencies into a synthetic
kernel-function corpus, and the scanner (taint analysis over CFG paths
behind conditional branches) must (a) recover the implanted ground
truth exactly and (b) measure the ~4x amplification.  A hardened build
(lfence behind every bounds check) must scan clean.
"""

from repro.analysis import generate_corpus, scan_corpus

from _harness import emit, run_once, scale

TOTAL_FUNCTIONS = scale(400, 2422)   # full scale: Kasper's corpus size


def test_gadget_census_amplification(benchmark):
    def experiment():
        corpus = generate_corpus(total=TOTAL_FUNCTIONS, seed=42)
        summary = scan_corpus(corpus.image, corpus.entries)
        hardened = generate_corpus(total=TOTAL_FUNCTIONS, seed=42,
                                   hardened=True)
        hardened_summary = scan_corpus(hardened.image, hardened.entries)
        return corpus, summary, hardened_summary

    corpus, summary, hardened_summary = run_once(benchmark, experiment)

    emit("gadget_census", [
        f"§9.3 — gadget census over {TOTAL_FUNCTIONS} synthetic kernel "
        f"functions",
        f"conventional Spectre gadgets (double load): "
        f"{summary.spectre_v1}",
        f"MDS-style gadgets (single load):            "
        f"{summary.mds_single_load}",
        f"exploitable with Phantom P3:                "
        f"{summary.phantom_exploitable}",
        f"amplification: {summary.amplification:.2f}x "
        f"(paper, from Kasper: 722/183 = 3.95x)",
        f"lfence-hardened build: {hardened_summary.spectre_v1} v1, "
        f"{hardened_summary.mds_single_load} single-load gadgets",
    ])

    # Scanner recovers the implanted ground truth exactly.
    assert summary.spectre_v1 == corpus.count("v1_double_load")
    assert summary.mds_single_load == corpus.count("mds_single_load")
    # The paper's shape: ~4x more gadgets once P3 counts.  The ratio is
    # a binomial estimate: at reduced corpus size its sampling noise is
    # wider, at paper scale it concentrates near Kasper's 3.95.
    low, high = (3.4, 4.6) if TOTAL_FUNCTIONS >= 2000 else (2.5, 6.0)
    assert low < summary.amplification < high
    # The §8.2 mitigation wipes the census.
    assert hardened_summary.phantom_exploitable == 0
