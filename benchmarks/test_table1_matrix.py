"""Table 1: how far each training x victim combination advances.

Reproduction target (shape): every asymmetric combination reaches
transient fetch AND decode on all tested CPUs (observations O1/O2);
transient execute only on AMD Zen 1/2 (O3); Intel parts show no signal
for jmp* victims; straight-line speculation of a taken jcc trained as
non-branch transiently executes (the paper's "occasionally observed"
case, deterministic here).
"""

import os

from repro.core import TrainKind, VictimKind
from repro.core.matrix import MatrixExperiment, format_matrix
from repro.pipeline import (ALL_MICROARCHES, AMD_MICROARCHES,
                            INTEL_MICROARCHES, Reach, ZEN1, ZEN2)
from repro.runner import run_campaign

from _harness import emit, finish_with_campaigns, run_once, telemetry_run


def test_table1_speculation_matrix(benchmark):
    experiment = MatrixExperiment(
        uarches=tuple(u.name for u in ALL_MICROARCHES))
    with telemetry_run("bench-table1",
                       uarches=[u.name for u in ALL_MICROARCHES]) as manifest:
        campaign = run_once(
            benchmark,
            lambda: run_campaign(experiment, jobs=os.cpu_count()))
        results = campaign.raise_on_failure().value
        reach_counts = {}
        for r in results:
            reach_counts[r.reach.name] = reach_counts.get(r.reach.name, 0) + 1
        finish_with_campaigns(manifest, "success", [campaign],
                              cells=len(results), reach=reach_counts,
                              jobs=campaign.jobs)
    emit("table1", format_matrix(results).splitlines(), manifest=manifest)

    by_key = {(r.uarch, r.train, r.victim): r.reach for r in results}

    # O1/O2: fetch and decode everywhere (except the Intel jmp* quirk).
    for r in results:
        if r.uarch in {u.name for u in INTEL_MICROARCHES} \
                and r.victim is VictimKind.INDIRECT:
            continue
        assert r.reach >= Reach.DECODE, \
            f"{r.uarch} {r.train.value}x{r.victim.value}: {r.reach}"

    # O3: transient execute exactly on Zen 1/2 (plus the jcc-SLS case).
    for r in results:
        is_zen12 = r.uarch in (ZEN1.name, ZEN2.name)
        jcc_sls = (r.train is TrainKind.NON_BRANCH
                   and r.victim is VictimKind.CONDITIONAL)
        if is_zen12:
            assert r.reach is Reach.EXECUTE
        elif not jcc_sls:
            assert r.reach < Reach.EXECUTE

    # Intel: no phantom *pipeline* signal for indirect-branch victims
    # — never ID; parts with BPU-assisted prefetch (9th/11th gen here)
    # still show IF, matching "do not indicate ID, and sometimes not
    # even IF" (§6).
    for uarch in INTEL_MICROARCHES:
        for train in TrainKind:
            reach = by_key.get((uarch.name, train, VictimKind.INDIRECT))
            if reach is None:
                continue
            assert reach < Reach.DECODE
            if not uarch.bpu_prefetch:
                assert reach is Reach.NONE

    # AMD reuses user predictions at kernel-aliased sources; Intel does
    # not (checked structurally via the indexing).
    for uarch in AMD_MICROARCHES:
        assert not uarch.btb.privilege_in_tag
