"""Table 4: physmap KASLR derandomization with P2 (Zen 1/2 only).

Reproduction target (shape): high accuracy on Zen 1 and Zen 2 (paper:
100 %/90 %); the search space is 25 600 slots — 52x the kernel image's
488, which is why the paper's physmap times (~100 s) dwarf its image
KASLR times (~4 s).  We assert the structural version of that shape:
the ascending scan stops exactly at the true slot, so its expected cost
is ~12 800 probes versus 488 candidates for the image exploit.
"""

from statistics import median

from repro.core import break_kernel_image_kaslr, break_physmap_kaslr
from repro.kernel import Machine
from repro.pipeline import ZEN1, ZEN2

from _harness import emit, run_once, scale

RUNS = scale(2, 10)
PHYS_MEM = {ZEN1: scale(1 << 30, 8 << 30),
            ZEN2: scale(1 << 30, 64 << 30)}


def test_table4_physmap_kaslr(benchmark):
    def experiment():
        rows = []
        for uarch in (ZEN1, ZEN2):
            outcomes = []
            for run in range(RUNS):
                machine = Machine(uarch, kaslr_seed=2000 + run,
                                  rng_seed=run,
                                  phys_mem=PHYS_MEM[uarch])
                image = break_kernel_image_kaslr(machine)
                result = break_physmap_kaslr(machine, image.guessed_base)
                outcomes.append({
                    "correct": result.correct(machine.kaslr),
                    "seconds": result.seconds,
                    "scanned": result.candidates_scanned,
                    "true_slot": machine.kaslr.physmap_slot,
                })
            rows.append((uarch, outcomes))
        return rows

    rows = run_once(benchmark, experiment)

    lines = [f"Table 4 — physmap KASLR via P2, {RUNS} runs",
             f"{'uarch':7s} {'model':20s} {'accuracy':>9s} "
             f"{'median simulated time':>22s} {'median scanned':>15s}"]
    for uarch, outcomes in rows:
        accuracy = sum(o["correct"] for o in outcomes) / len(outcomes)
        med = median(o["seconds"] for o in outcomes)
        med_scanned = median(o["scanned"] for o in outcomes)
        lines.append(f"{uarch.name:7s} {uarch.model:20s} "
                     f"{accuracy * 100:8.1f}% {med * 1000:18.3f} ms "
                     f"{med_scanned:15.0f}")
    emit("table4", lines)

    for uarch, outcomes in rows:
        accuracy = sum(o["correct"] for o in outcomes) / len(outcomes)
        assert accuracy >= 0.9, uarch.name   # paper: 100 % / 90 %
        for o in outcomes:
            # The ascending scan stops exactly at the true slot: the
            # expected search cost scales with the 25 600-slot space.
            assert o["scanned"] == o["true_slot"] + 1
