"""Table 2: covert-channel accuracy and leakage rate.

Reproduction target (shape): high accuracy (paper: 90-100 %) on every
Zen generation for the fetch channel and on Zen 1/2 for the execute
channel; rates ordered by clock frequency (paper: Zen 4 fastest).
Absolute bits/s are simulated-clock figures, far above the paper's
hardware numbers because our Prime+Probe rounds cost fewer cycles than
real ones — the comparison target is accuracy and ordering.
"""

import os

from repro.core import CovertExperiment
from repro.kernel import MachineSpec
from repro.pipeline import ZEN1, ZEN2, ZEN3, ZEN4
from repro.runner import run_campaign

from _harness import emit, finish_with_campaigns, run_once, scale, \
    telemetry_run

N_BITS = scale(512, 4096)


def test_table2_covert_channels(benchmark):
    def experiment():
        rows = []
        for uarch in (ZEN1, ZEN2, ZEN3, ZEN4):
            spec = MachineSpec(uarch=uarch.name, kaslr_seed=11,
                               sibling_load=True)
            campaign = run_campaign(
                CovertExperiment(machine=spec, channel="fetch",
                                 n_bits=N_BITS, seed=1),
                jobs=os.cpu_count())
            rows.append(("fetch", uarch, campaign))
        for uarch in (ZEN1, ZEN2):
            spec = MachineSpec(uarch=uarch.name, kaslr_seed=12)
            campaign = run_campaign(
                CovertExperiment(machine=spec, channel="execute",
                                 n_bits=N_BITS, seed=2),
                jobs=os.cpu_count())
            rows.append(("execute", uarch, campaign))
        return [(channel, uarch, c.raise_on_failure().value, c)
                for channel, uarch, c in rows]

    with telemetry_run("bench-table2", n_bits=N_BITS) as manifest:
        full_rows = run_once(benchmark, experiment)
        rows = [(ch, u, r) for ch, u, r, _ in full_rows]
        finish_with_campaigns(
            manifest, "success", [c for *_, c in full_rows],
            accuracy={f"{ch}/{u.name}": r.accuracy for ch, u, r in rows})

    lines = [f"Table 2 — covert channel, {N_BITS} random bits "
             f"(median of 1 run)",
             f"{'channel':9s} {'uarch':7s} {'model':20s} "
             f"{'accuracy':>9s} {'rate':>16s}"]
    for channel, uarch, result in rows:
        lines.append(f"{channel:9s} {uarch.name:7s} {uarch.model:20s} "
                     f"{result.accuracy * 100:8.2f}% "
                     f"{result.bits_per_second:12,.0f} b/s")
    emit("table2", lines, manifest=manifest)

    for channel, uarch, result in rows:
        assert result.accuracy >= 0.90, (channel, uarch.name)

    fetch_rates = {u.name: r.bits_per_second
                   for ch, u, r in rows if ch == "fetch"}
    # Paper ordering: rate grows with clock (Zen 4 fastest).
    assert fetch_rates["Zen 4"] > fetch_rates["Zen 1"]
