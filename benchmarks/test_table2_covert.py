"""Table 2: covert-channel accuracy and leakage rate.

Reproduction target (shape): high accuracy (paper: 90-100 %) on every
Zen generation for the fetch channel and on Zen 1/2 for the execute
channel; rates ordered by clock frequency (paper: Zen 4 fastest).
Absolute bits/s are simulated-clock figures, far above the paper's
hardware numbers because our Prime+Probe rounds cost fewer cycles than
real ones — the comparison target is accuracy and ordering.
"""

from repro.core import execute_covert_channel, fetch_covert_channel
from repro.kernel import Machine
from repro.pipeline import ZEN1, ZEN2, ZEN3, ZEN4

from _harness import emit, run_once, scale

N_BITS = scale(512, 4096)


def test_table2_covert_channels(benchmark):
    def experiment():
        rows = []
        for uarch in (ZEN1, ZEN2, ZEN3, ZEN4):
            machine = Machine(uarch, kaslr_seed=11, sibling_load=True)
            rows.append(("fetch", uarch,
                         fetch_covert_channel(machine, n_bits=N_BITS)))
        for uarch in (ZEN1, ZEN2):
            machine = Machine(uarch, kaslr_seed=12)
            rows.append(("execute", uarch,
                         execute_covert_channel(machine, n_bits=N_BITS)))
        return rows

    rows = run_once(benchmark, experiment)

    lines = [f"Table 2 — covert channel, {N_BITS} random bits "
             f"(median of 1 run)",
             f"{'channel':9s} {'uarch':7s} {'model':20s} "
             f"{'accuracy':>9s} {'rate':>16s}"]
    for channel, uarch, result in rows:
        lines.append(f"{channel:9s} {uarch.name:7s} {uarch.model:20s} "
                     f"{result.accuracy * 100:8.2f}% "
                     f"{result.bits_per_second:12,.0f} b/s")
    emit("table2", lines)

    for channel, uarch, result in rows:
        assert result.accuracy >= 0.90, (channel, uarch.name)

    fetch_rates = {u.name: r.bits_per_second
                   for ch, u, r in rows if ch == "fetch"}
    # Paper ordering: rate grows with clock (Zen 4 fastest).
    assert fetch_rates["Zen 4"] > fetch_rates["Zen 1"]
