"""Section 7.4: leaking kernel memory with an MDS gadget + P3.

Reproduction target (shape): the paper leaks 4096 bytes of randomized
kernel data on a Zen 2 EPYC 7252 at a median 84 B/s with 100 % accuracy
in 8 of 10 reboots (2 gave no signal).  We assert perfect accuracy on
the signalling runs and report the simulated bandwidth; the byte count
and run count are reduced by default (REPRO_FULL=1 for paper scale).
"""

from statistics import median

from repro.core import leak_kernel_memory
from repro.kernel import Machine
from repro.pipeline import ZEN2

from _harness import emit, run_once, scale

RUNS = scale(3, 10)
N_BYTES = scale(256, 4096)


def test_mds_gadget_kernel_leak(benchmark):
    def experiment():
        outcomes = []
        for run in range(RUNS):
            machine = Machine(ZEN2, kaslr_seed=4000 + run, rng_seed=run)
            result = leak_kernel_memory(machine, machine.kaslr.image_base,
                                        machine.kaslr.physmap_base,
                                        n_bytes=N_BYTES)
            outcomes.append(result)
        return outcomes

    outcomes = run_once(benchmark, experiment)

    signalling = [r for r in outcomes if r.signal]
    lines = [f"§7.4 — MDS-gadget leak of {N_BYTES} bytes, {RUNS} runs "
             f"(fresh boot each)",
             f"runs with signal: {len(signalling)}/{RUNS} "
             f"(paper: 8/10)"]
    for i, result in enumerate(outcomes):
        lines.append(f"  run {i}: accuracy {result.accuracy * 100:6.2f}%  "
                     f"bandwidth {result.bytes_per_second:10.1f} B/s "
                     f"(simulated)  no-signal bytes: "
                     f"{result.no_signal_bytes}")
    if signalling:
        lines.append(f"median bandwidth over signalling runs: "
                     f"{median(r.bytes_per_second for r in signalling):.1f}"
                     f" B/s (paper: 84 B/s on hardware)")
    emit("mds_leak", lines)

    assert signalling, "no run produced any signal"
    for result in signalling:
        assert result.accuracy == 1.0   # paper: perfect accuracy
