"""Table 3: kernel-image KASLR derandomization (accuracy, median time).

Reproduction target (shape): near-perfect accuracy on Zen 2/3/4 with
per-run re-randomization (the paper reboots; we boot a fresh machine
per run).  Simulated times are far below the paper's wall-clock seconds
(our syscalls are cheaper than real ones) but must preserve the
ordering: Zen 2 slowest, Zen 4 fastest (clock-driven).
"""

import os
from statistics import median

from repro.core import KaslrImageExperiment
from repro.kernel import Kaslr, MachineSpec
from repro.pipeline import ZEN2, ZEN3, ZEN4
from repro.runner import run_campaign

from _harness import emit, finish_with_campaigns, run_once, scale, \
    telemetry_run

RUNS = scale(3, 10)


def test_table3_kernel_image_kaslr(benchmark):
    with telemetry_run("bench-table3", runs=RUNS,
                       uarches=[u.name for u in (ZEN2, ZEN3, ZEN4)]) \
            as manifest:
        campaigns = []

        def experiment():
            rows = []
            for uarch in (ZEN2, ZEN3, ZEN4):
                outcomes = []
                for run in range(RUNS):
                    seed = 1000 + run
                    spec = MachineSpec(uarch=uarch.name, kaslr_seed=seed,
                                       rng_seed=run)
                    campaign = run_campaign(
                        KaslrImageExperiment(machine=spec),
                        jobs=os.cpu_count())
                    campaigns.append(campaign)
                    result = campaign.raise_on_failure().value
                    outcomes.append(
                        (result.correct(Kaslr.randomize(seed)),
                         result.seconds))
                rows.append((uarch, outcomes))
            return rows

        rows = run_once(benchmark, experiment)
        finish_with_campaigns(manifest, "success", campaigns, accuracy={
            u.name: sum(ok for ok, _ in o) / len(o) for u, o in rows})

    lines = [f"Table 3 — kernel image KASLR via P1, {RUNS} runs "
             f"(fresh KASLR each)",
             f"{'uarch':7s} {'model':20s} {'accuracy':>9s} "
             f"{'median simulated time':>22s}"]
    for uarch, outcomes in rows:
        accuracy = sum(ok for ok, _ in outcomes) / len(outcomes)
        med = median(seconds for _, seconds in outcomes)
        lines.append(f"{uarch.name:7s} {uarch.model:20s} "
                     f"{accuracy * 100:8.1f}% {med * 1000:18.3f} ms")
    emit("table3", lines, manifest=manifest)

    accuracies = {u.name: sum(ok for ok, _ in o) / len(o)
                  for u, o in rows}
    times = {u.name: median(s for _, s in o) for u, o in rows}
    for name, accuracy in accuracies.items():
        assert accuracy >= 0.9, name        # paper: 95-100 %
    assert times["Zen 2"] > times["Zen 4"]  # paper: 4.09 s vs 1.23 s
