"""Microbenchmark: what does span tracing cost the hot simulator path?

The observability layer's contract is that disabled telemetry is a
no-op branch and *enabled* telemetry only brackets coarse phases (jobs,
boots, fast-path compiles) — never per-instruction work.  This guard
runs the ``branch_heavy`` bench workload (the mispredict-and-recover
steady state the experiments live in) with the span recorder off and
on, and fails if enabling capture costs more than a few percent of
wall clock.

Tolerance: 3% by default (the acceptance bar), overridable through
``REPRO_SPAN_OVERHEAD_TOL`` (fraction, e.g. ``0.10``) for noisy CI
runners.  The off/on rounds are *interleaved* (off, on, off, on, ...)
and best-of-N is taken per variant, so slow clock drift — thermal
throttling, a neighbour landing on the core — hits both variants
equally instead of being billed to whichever batch ran second.
"""

import os

from repro.bench import _branch_heavy, _run_program
from repro.telemetry import SPANS

from _harness import emit, run_once, scale

ITERS = scale(3_000, 20_000)
REPEATS = 5
TOLERANCE = float(os.environ.get("REPRO_SPAN_OVERHEAD_TOL", "0.03"))


def _one_round(tracing: bool, span_dir) -> float:
    if not tracing:
        return _run_program(_branch_heavy, ITERS, fastpath=True)[1]
    SPANS.start(span_dir, name="bench")
    try:
        with SPANS.span("branch_heavy", iters=ITERS):
            _, wall = _run_program(_branch_heavy, ITERS, fastpath=True)
    finally:
        SPANS.finish()
    return wall


def test_span_capture_overhead_is_bounded(benchmark, tmp_path):
    def measure():
        _one_round(False, None)                    # warm both engines
        _one_round(True, tmp_path / "warmup")
        baseline_s = traced_s = float("inf")
        for round_ in range(REPEATS):
            baseline_s = min(baseline_s, _one_round(False, None))
            traced_s = min(
                traced_s, _one_round(True, tmp_path / f"round{round_}"))
        return baseline_s, traced_s

    baseline_s, traced_s = run_once(benchmark, measure)
    overhead = traced_s / baseline_s - 1.0

    lines = [f"span capture overhead, branch_heavy x {ITERS:,} "
             f"(best of {REPEATS})",
             f"{'variant':14s} {'seconds':>9s}",
             f"{'spans off':14s} {baseline_s:9.4f}",
             f"{'spans on':14s} {traced_s:9.4f}",
             f"overhead: {overhead * 100:+.2f}% "
             f"(tolerance {TOLERANCE * 100:.0f}%)"]
    emit("span_overhead", lines)

    assert not SPANS.enabled          # benchmark left no recorder behind
    assert overhead < TOLERANCE, (
        f"span capture cost {overhead * 100:.2f}% on branch_heavy, "
        f"over the {TOLERANCE * 100:.0f}% budget")
