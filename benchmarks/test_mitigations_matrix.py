"""Sections 6.3/8: what the deployed mitigations actually stop.

Reproduction targets:
* **O4** — with SuppressBPOnNonBr set (Zen 2), phantoms at non-branch
  victims still fetch and decode; only transient execute stops;
* **O5** — with AutoIBRS (Zen 4), cross-privilege phantom fetch (and
  decode) still happens: P1 and the KASLR break survive;
* P2/P3 remain available on Zen 2 by targeting *branch* victims even
  under SuppressBPOnNonBr ("branches are common in software");
* IBPB on kernel entry stops all three primitives.
"""

from repro.core import (TrainKind, VictimKind, break_kernel_image_kaslr,
                        measure_cell)
from repro.kernel import Machine, MitigationConfig
from repro.pipeline import Reach, ZEN2, ZEN4

from _harness import emit, run_once


def test_mitigations_do_not_stop_fetch_and_decode(benchmark):
    def experiment():
        out = {}
        out["zen2_base"] = measure_cell(
            ZEN2, TrainKind.INDIRECT, VictimKind.NON_BRANCH)
        out["zen2_suppress"] = measure_cell(
            ZEN2, TrainKind.INDIRECT, VictimKind.NON_BRANCH,
            mitigations=MitigationConfig(suppress_bp_on_non_br=True))
        out["zen2_suppress_branch_victim"] = measure_cell(
            ZEN2, TrainKind.INDIRECT, VictimKind.DIRECT,
            mitigations=MitigationConfig(suppress_bp_on_non_br=True))
        out["zen4_autoibrs"] = measure_cell(
            ZEN4, TrainKind.INDIRECT, VictimKind.NON_BRANCH,
            mitigations=MitigationConfig(auto_ibrs=True))

        # KASLR break with every AMD-recommended mitigation on (O5).
        machine = Machine(ZEN4, kaslr_seed=55, mitigations=MitigationConfig(
            suppress_bp_on_non_br=True, auto_ibrs=True))
        out["zen4_kaslr_hardened"] = \
            break_kernel_image_kaslr(machine).correct(machine.kaslr)

        # IBPB stops the injection outright.
        machine = Machine(ZEN2, kaslr_seed=56, mitigations=MitigationConfig(
            ibpb_on_kernel_entry=True))
        out["zen2_kaslr_ibpb"] = \
            break_kernel_image_kaslr(machine).correct(machine.kaslr)
        return out

    out = run_once(benchmark, experiment)

    def fmt(result):
        return (f"IF={result.fetch} ID={result.decode} "
                f"EX={result.execute}")

    emit("mitigations_matrix", [
        "§6.3/§8 — mitigation effectiveness against Phantom",
        f"Zen 2 baseline (jmp* x non-branch):      "
        f"{fmt(out['zen2_base'])}",
        f"Zen 2 + SuppressBPOnNonBr:               "
        f"{fmt(out['zen2_suppress'])}   <- O4",
        f"Zen 2 + SuppressBPOnNonBr, jmp victim:   "
        f"{fmt(out['zen2_suppress_branch_victim'])}   (P2/P3 survive)",
        f"Zen 4 + AutoIBRS:                        "
        f"{fmt(out['zen4_autoibrs'])}   <- O5",
        f"Zen 4 KASLR break under full hardening:  "
        f"{'SUCCEEDS' if out['zen4_kaslr_hardened'] else 'fails'}",
        f"Zen 2 KASLR break under IBPB-on-entry:   "
        f"{'succeeds' if out['zen2_kaslr_ibpb'] else 'FAILS (mitigated)'}",
    ])

    # O4: fetch + decode survive, execute stops, on non-branch victims.
    assert out["zen2_base"].reach is Reach.EXECUTE
    assert out["zen2_suppress"].fetch and out["zen2_suppress"].decode
    assert not out["zen2_suppress"].execute
    # ...but a branch victim still reaches execute (P2/P3 unaffected).
    assert out["zen2_suppress_branch_victim"].reach is Reach.EXECUTE
    # O5: AutoIBRS leaves cross-... (user-user here) fetch+decode alone.
    assert out["zen4_autoibrs"].fetch
    # P1-based KASLR break still works fully hardened; IBPB stops it.
    assert out["zen4_kaslr_hardened"]
    assert not out["zen2_kaslr_ibpb"]
